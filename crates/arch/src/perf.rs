//! Frame-processing-rate model (paper §V-D, Figs. 13–14).
//!
//! The FORMS/ISAAC pipeline overlaps layers, so the frame rate is set by
//! the slowest layer. One crossbar processes its `crossbar_dim /
//! fragment_size` row groups sequentially, spending the layer's average
//! effective input cycles per group at the MCU's conversion cycle time;
//! different crossbars (and the crossbars of different layers) run in
//! parallel. Spare chip capacity replicates layers, which is how model
//! compression (needing fewer crossbars per model copy) turns into frame
//! rate.

use forms_hwmodel::{McuConfig, CHIP_TILES, MCUS_PER_TILE};

pub use forms_exec::LayerPerf;

/// Whole-model frame-rate model on a given MCU configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct FpsModel {
    mcu: McuConfig,
    layers: Vec<LayerPerf>,
}

impl FpsModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or any layer has zero positions or
    /// crossbars.
    pub fn new(mcu: McuConfig, layers: Vec<LayerPerf>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        assert!(
            layers.iter().all(|l| l.positions > 0 && l.crossbars > 0),
            "layers must have positive positions and crossbars"
        );
        Self { mcu, layers }
    }

    /// The MCU configuration.
    pub fn mcu(&self) -> &McuConfig {
        &self.mcu
    }

    /// Crossbars available on the chip.
    pub fn chip_crossbars(&self) -> usize {
        self.mcu.crossbars * MCUS_PER_TILE * CHIP_TILES
    }

    /// Crossbars one copy of the model occupies.
    pub fn model_crossbars(&self) -> usize {
        self.layers.iter().map(|l| l.crossbars).sum()
    }

    /// How many copies of the model fit on the chip (≥ 1; fractional
    /// replication is allowed for layer-granular duplication, as in
    /// ISAAC's layer-balanced allocation).
    pub fn replication(&self) -> f64 {
        (self.chip_crossbars() as f64 / self.model_crossbars() as f64).max(1.0)
    }

    /// Latency of layer `i` per image in nanoseconds, after replication.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer_latency_ns(&self, i: usize) -> f64 {
        let l = &self.layers[i];
        let groups = (self.mcu.crossbar_dim / self.mcu.fragment_size) as f64;
        l.positions as f64 * groups * l.input_cycles * self.mcu.conversion_cycle_ns()
            / self.replication()
    }

    /// The pipeline bottleneck: the slowest layer's latency in ns.
    pub fn bottleneck_ns(&self) -> f64 {
        (0..self.layers.len())
            .map(|i| self.layer_latency_ns(i))
            .fold(0.0, f64::max)
    }

    /// Frames per second (pipelined: throughput = 1 / bottleneck).
    pub fn fps(&self) -> f64 {
        1e9 / self.bottleneck_ns()
    }

    /// Frame-rate speedup over a baseline model.
    pub fn speedup_over(&self, baseline: &FpsModel) -> f64 {
        self.fps() / baseline.fps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(positions: usize, crossbars: usize, input_cycles: f64) -> LayerPerf {
        LayerPerf {
            positions,
            crossbars,
            input_cycles,
        }
    }

    fn isaac_model(layers: Vec<LayerPerf>) -> FpsModel {
        FpsModel::new(McuConfig::isaac(), layers)
    }

    fn forms_model(fragment: usize, layers: Vec<LayerPerf>) -> FpsModel {
        FpsModel::new(McuConfig::forms(fragment), layers)
    }

    #[test]
    fn bottleneck_is_slowest_layer() {
        let m = isaac_model(vec![layer(1024, 4, 16.0), layer(64, 4, 16.0)]);
        assert!((m.bottleneck_ns() - m.layer_latency_ns(0)).abs() < 1e-9);
    }

    #[test]
    fn replication_scales_fps_linearly() {
        // A model using half the chip gets 2× replication headroom over one
        // using the whole chip.
        let small = isaac_model(vec![layer(256, 8064, 16.0)]);
        let large = isaac_model(vec![layer(256, 16128, 16.0)]);
        assert!((small.fps() / large.fps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn replication_never_below_one() {
        // A model bigger than the chip still runs (time-multiplexed), just
        // without replication.
        let m = isaac_model(vec![layer(16, 100_000, 16.0)]);
        assert_eq!(m.replication(), 1.0);
    }

    #[test]
    fn zero_skipping_improves_fps_by_eic_ratio() {
        let without = forms_model(8, vec![layer(256, 64, 16.0)]);
        let with = forms_model(8, vec![layer(256, 64, 10.7)]);
        assert!((with.speedup_over(&without) - 16.0 / 10.7).abs() < 1e-9);
    }

    #[test]
    fn compression_improves_fps_via_replication() {
        // Pruning to 1/4 of the crossbars quadruples replication (chip
        // has 16128 crossbars).
        let dense = isaac_model(vec![layer(256, 8064, 16.0)]);
        let pruned = isaac_model(vec![layer(256, 2016, 16.0)]);
        assert!((pruned.speedup_over(&dense) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fine_grained_forms_loses_raw_fps_to_isaac() {
        // Without zero-skipping or compression, FORMS at fragment 8 is
        // slower per crossbar than ISAAC (16 sequential row groups), which
        // is the paper's motivation for zero-skipping.
        let layers = vec![layer(256, 1000, 16.0)];
        let isaac = isaac_model(layers.clone());
        let forms = forms_model(8, layers);
        assert!(forms.fps() < isaac.fps());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        FpsModel::new(McuConfig::isaac(), vec![]);
    }
}
