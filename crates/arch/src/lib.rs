//! # forms-arch
//!
//! The FORMS accelerator architecture (paper §IV) — the primary
//! contribution of the reproduction:
//!
//! - [`effective_bits`] / [`fragment_eic`] / [`ShiftRegisterBank`] — the
//!   zero-skipping logic and effective-input-cycle math (§IV-B, Figs. 7–9),
//! - [`MappedLayer`] — the polarized magnitude-only crossbar mapping with
//!   the 1R sign indicator (§IV-A, Fig. 5), executing bit-serial
//!   mixed-signal matrix-vector products,
//! - [`Accelerator`] — whole-network mapping and end-to-end inference
//!   through the analog path, with device-variation injection (§V-E),
//! - [`Pipeline`] — the 22/26-stage execution pipeline (Fig. 12),
//! - [`FpsModel`] — the frame-processing-rate model behind Figs. 13–14.
//!
//! # Example
//!
//! ```
//! use forms_arch::{fragment_eic, ShiftRegisterBank};
//!
//! // Paper Fig. 7: the fragment needs 7 effective input cycles.
//! let inputs = [0b101101u32, 0b1001011];
//! assert_eq!(fragment_eic(&inputs), 7);
//! assert_eq!(ShiftRegisterBank::load(&inputs).drain().len(), 7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accelerator;
mod dse;
mod mapping;
mod noc;
mod perf;
mod pipeline;
mod scheduler;
mod zero_skip;

pub use accelerator::{Accelerator, AcceleratorConfig};
pub use dse::{DesignPoint, DesignSpace};
pub use forms_exec::{CrossbarEngine, ExecError, Executor, LayerPrecision, Merge, PrecisionPlan};
pub use mapping::{FormsActivity, MappedLayer, MappingConfig, MvmScratch, MvmStats, MATMUL_TILE};
pub use noc::{ChipPlacement, LayerPlacement, PlacementError, TileAssignment};
pub use perf::{FpsModel, LayerPerf};
pub use pipeline::{Pipeline, PipelineOp, PipelineStage};
pub use scheduler::{jobs_from_eics, schedule, AssignmentPolicy, FragmentJob, ScheduleReport};
pub use zero_skip::{
    cycles_saved, effective_bits, eic_stats, fragment_eic, EicStats, ShiftRegisterBank,
};
