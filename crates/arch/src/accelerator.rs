//! End-to-end FORMS accelerator simulation: a whole DNN mapped onto
//! polarized crossbars and executed through the mixed-signal path.
//!
//! Convolution and linear layers run on [`MappedLayer`]s (im2col → bit-
//! serial crossbar MVMs → sign-indicator accumulation); pooling, ReLU,
//! batch-norm and the residual adds run in the digital units, exactly as in
//! the paper's tile (Fig. 10).
//!
//! Activations must be non-negative (the post-ReLU guarantee the paper's
//! designs rely on); quantization clamps at zero.

use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_reram::LogNormalVariation;
use forms_tensor::{im2col, Conv2dGeometry, FixedSpec, QuantizedTensor, Tensor};
use forms_rng::Rng;

use crate::mapping::{MapError, MappedLayer, MappingConfig, MvmStats};

/// Accelerator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcceleratorConfig {
    /// Crossbar mapping parameters.
    pub mapping: MappingConfig,
    /// Activation quantization bits (16 in the paper).
    pub activation_bits: u32,
}

impl AcceleratorConfig {
    /// The paper's evaluation point at a fragment size.
    pub fn paper(fragment_size: usize) -> Self {
        Self {
            mapping: MappingConfig::paper(fragment_size),
            activation_bits: 16,
        }
    }
}

/// A DNN mapped onto the FORMS accelerator.
///
/// Holds a copy of the network (for the digital layers and layer shapes)
/// plus one [`MappedLayer`] per weight layer, and executes inference
/// through the analog path while accumulating cycle statistics.
#[derive(Clone, Debug)]
pub struct Accelerator {
    net: Network,
    mapped: Vec<MappedLayer>,
    perms: Vec<Option<Vec<usize>>>,
    config: AcceleratorConfig,
    stats: MvmStats,
    layer_stats: Vec<MvmStats>,
    /// Matrix-vector activations per weight layer since the last reset.
    layer_mvms: Vec<u64>,
}

impl Accelerator {
    /// Maps a network with identity row order (W-major polarization).
    ///
    /// # Errors
    ///
    /// Returns the first layer's [`MapError`] if any weight layer is not
    /// polarized (or is all zero).
    pub fn map_network(net: &Network, config: AcceleratorConfig) -> Result<Self, MapError> {
        let count = {
            let mut n = net.clone();
            n.weight_layer_count()
        };
        Self::with_permutations(net, config, vec![None; count])
    }

    /// Maps a network whose polarization was trained under per-layer row
    /// permutations (H-/C-major policies). `perms[i]` must be the policy
    /// permutation of weight layer `i` in visit order (`None` = identity),
    /// exactly as produced by `forms_admm::row_permutation`.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] if a layer cannot be mapped.
    ///
    /// # Panics
    ///
    /// Panics if `perms.len()` differs from the weight-layer count.
    pub fn with_permutations(
        net: &Network,
        config: AcceleratorConfig,
        perms: Vec<Option<Vec<usize>>>,
    ) -> Result<Self, MapError> {
        let mut net = net.clone();
        let mut matrices = Vec::new();
        net.for_each_weight_layer(&mut |wl| {
            matrices.push(match wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            });
        });
        assert_eq!(
            matrices.len(),
            perms.len(),
            "need one permutation slot per weight layer"
        );
        let mut mapped = Vec::with_capacity(matrices.len());
        for (m, perm) in matrices.iter().zip(&perms) {
            let policy_m = match perm {
                Some(p) => permute_rows(m, p),
                None => m.clone(),
            };
            mapped.push(MappedLayer::map(&policy_m, config.mapping)?);
        }
        let count = mapped.len();
        Ok(Self {
            net,
            mapped,
            perms,
            config,
            stats: MvmStats::default(),
            layer_stats: vec![MvmStats::default(); count],
            layer_mvms: vec![0; count],
        })
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The mapped weight layers, in visit order.
    pub fn mapped_layers(&self) -> &[MappedLayer] {
        &self.mapped
    }

    /// Mutable access to the mapped layers (variation/fault injection).
    pub fn mapped_layers_mut(&mut self) -> &mut [MappedLayer] {
        &mut self.mapped
    }

    /// Total physical crossbars used by the whole network.
    pub fn total_crossbars(&self) -> usize {
        self.mapped.iter().map(MappedLayer::crossbar_count).sum()
    }

    /// Accumulated MVM statistics since the last reset.
    pub fn stats(&self) -> MvmStats {
        self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MvmStats::default();
        self.layer_stats = vec![MvmStats::default(); self.mapped.len()];
        self.layer_mvms = vec![0; self.mapped.len()];
    }

    /// Accumulated statistics per weight layer (visit order) since the
    /// last reset.
    pub fn layer_stats(&self) -> &[MvmStats] {
        &self.layer_stats
    }

    /// Builds the per-layer inputs of the frame-rate model from the
    /// statistics of the inferences run so far: each layer's measured mean
    /// EIC, its crossbar footprint and its matrix-vector activations per
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if no inference has been run since the last reset or
    /// `images` is zero.
    pub fn layer_perfs(&self, images: usize) -> Vec<crate::LayerPerf> {
        assert!(images > 0, "images must be positive");
        assert!(
            self.layer_mvms.iter().any(|&m| m > 0),
            "run at least one inference before extracting layer perfs"
        );
        self.mapped
            .iter()
            .zip(&self.layer_stats)
            .zip(&self.layer_mvms)
            .map(|((layer, stats), &mvms)| {
                let mean_eic = if stats.fragments_total == 0 {
                    self.config.mapping.input_bits as f64
                } else {
                    (stats.cycles as f64 / stats.fragments_total as f64).max(1.0)
                };
                crate::LayerPerf {
                    positions: (mvms as usize / images).max(1),
                    crossbars: layer.crossbar_count(),
                    input_cycles: mean_eic,
                }
            })
            .collect()
    }

    /// Applies log-normal device variation to every crossbar of every
    /// layer (paper §V-E).
    pub fn apply_variation<R: Rng + ?Sized>(&mut self, v: &LogNormalVariation, rng: &mut R) {
        for layer in &mut self.mapped {
            for xbar in layer.crossbars_mut() {
                v.apply(xbar, rng);
            }
        }
    }

    /// Runs inference on a `[N, ...]` batch through the mixed-signal path.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut layers = std::mem::take(&mut self.net).into_layers();
        let mut widx = 0;
        let mut y = x.clone();
        for layer in &mut layers {
            y = self.forward_layer(layer, &y, &mut widx);
        }
        self.net = Network::new(layers);
        y
    }

    fn forward_layer(&mut self, layer: &mut Layer, x: &Tensor, widx: &mut usize) -> Tensor {
        match layer {
            Layer::Conv2d(conv) => {
                let idx = *widx;
                *widx += 1;
                let geom = Conv2dGeometry::new(
                    conv.in_channels(),
                    x.dims()[2],
                    x.dims()[3],
                    conv.kernel(),
                    conv.kernel(),
                    conv.stride(),
                    conv.padding(),
                );
                let bias = conv.bias().value.clone();
                self.conv_forward(idx, x, &geom, &bias)
            }
            Layer::Linear(lin) => {
                let idx = *widx;
                *widx += 1;
                let bias = lin.bias().value.clone();
                self.linear_forward(idx, x, &bias)
            }
            Layer::Residual(block) => {
                let mut y = x.clone();
                for l in block.body_mut() {
                    y = self.forward_layer(l, &y, widx);
                }
                let shortcut = match block.projection_mut() {
                    Some(p) => self.forward_layer(p, x, widx),
                    None => x.clone(),
                };
                // Digital add + ReLU.
                y.zip(&shortcut, |a, b| (a + b).max(0.0))
            }
            other => other.forward(x, false),
        }
    }

    /// Quantizes a non-negative activation tensor with a shared per-call
    /// scale.
    fn quantize_activations(&self, t: &Tensor) -> QuantizedTensor {
        let spec = FixedSpec::for_max_value(self.config.activation_bits, t.max());
        QuantizedTensor::quantize_with(t, spec)
    }

    fn conv_forward(
        &mut self,
        idx: usize,
        x: &Tensor,
        geom: &Conv2dGeometry,
        bias: &Tensor,
    ) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let f = bias.len();
        let positions = geom.out_positions();
        let mut out = Tensor::zeros(&[n, f, geom.out_h, geom.out_w]);
        for s in 0..n {
            let sample = Tensor::from_vec(
                x.data()[s * c * h * w..(s + 1) * c * h * w].to_vec(),
                &[c, h, w],
            );
            let cols = im2col(&sample, geom);
            let q = self.quantize_activations(&cols);
            let patch = geom.patch_len();
            for p in 0..positions {
                let mut codes: Vec<u32> =
                    (0..patch).map(|r| q.codes()[r * positions + p]).collect();
                if let Some(perm) = &self.perms[idx] {
                    codes = perm.iter().map(|&src| codes[src]).collect();
                }
                let (vals, stats) = self.mapped[idx].matvec(&codes, q.spec().scale());
                self.stats.merge(stats);
                self.layer_stats[idx].merge(stats);
                self.layer_mvms[idx] += 1;
                for (fi, v) in vals.iter().enumerate() {
                    out.data_mut()[((s * f + fi) * geom.out_h) * geom.out_w + p] =
                        v + bias.data()[fi];
                }
            }
        }
        out
    }

    fn linear_forward(&mut self, idx: usize, x: &Tensor, bias: &Tensor) -> Tensor {
        let (n, in_features) = (x.dims()[0], x.dims()[1]);
        let o = bias.len();
        let mut out = Tensor::zeros(&[n, o]);
        for s in 0..n {
            let row = Tensor::from_vec(
                x.data()[s * in_features..(s + 1) * in_features].to_vec(),
                &[in_features],
            );
            let q = self.quantize_activations(&row);
            let mut codes = q.codes().to_vec();
            if let Some(perm) = &self.perms[idx] {
                codes = perm.iter().map(|&src| codes[src]).collect();
            }
            let (vals, stats) = self.mapped[idx].matvec(&codes, q.spec().scale());
            self.stats.merge(stats);
            self.layer_stats[idx].merge(stats);
            self.layer_mvms[idx] += 1;
            for (j, v) in vals.iter().enumerate() {
                out.data_mut()[s * o + j] = v + bias.data()[j];
            }
        }
        out
    }

    /// Runs inference on a `[N, ...]` batch with samples distributed over
    /// worker threads (one accelerator clone per worker — the crossbars are
    /// read-only during inference, so results are identical to
    /// [`forward`](Self::forward)). Statistics from all workers are merged.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn forward_parallel(&mut self, x: &Tensor, workers: usize) -> Tensor {
        assert!(workers > 0, "need at least one worker");
        let n = x.dims()[0];
        if n == 0 || workers == 1 {
            return self.forward(x);
        }
        let workers = workers.min(n);
        let sample_len = x.len() / n;
        let sample_dims = &x.dims()[1..];
        let chunk = n.div_ceil(workers);
        type WorkerResult = (Tensor, MvmStats, Vec<MvmStats>, Vec<u64>);
        let mut results: Vec<Option<WorkerResult>> = vec![None; workers];
        std::thread::scope(|scope| {
            for (w, slot) in results.iter_mut().enumerate() {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let mut dims = vec![hi - lo];
                dims.extend_from_slice(sample_dims);
                let part =
                    Tensor::from_vec(x.data()[lo * sample_len..hi * sample_len].to_vec(), &dims);
                let mut worker_accel = self.clone();
                worker_accel.reset_stats();
                scope.spawn(move || {
                    let y = worker_accel.forward(&part);
                    let layer_stats = worker_accel.layer_stats().to_vec();
                    let layer_mvms = worker_accel.layer_mvms.clone();
                    *slot = Some((y, worker_accel.stats(), layer_stats, layer_mvms));
                });
            }
        });
        // Stitch outputs back in order.
        let mut out_data = Vec::new();
        let mut out_dims: Option<Vec<usize>> = None;
        for slot in results.into_iter().flatten() {
            let (y, stats, layer_stats, layer_mvms) = slot;
            self.stats.merge(stats);
            for (acc, st) in self.layer_stats.iter_mut().zip(&layer_stats) {
                acc.merge(*st);
            }
            for (acc, &m) in self.layer_mvms.iter_mut().zip(&layer_mvms) {
                *acc += m;
            }
            if out_dims.is_none() {
                out_dims = Some(y.dims().to_vec());
            }
            out_data.extend_from_slice(y.data());
        }
        let mut dims = out_dims.expect("at least one worker ran");
        dims[0] = n;
        Tensor::from_vec(out_data, &dims)
    }

    /// Classification accuracy of the mapped model on a dataset.
    pub fn evaluate(&mut self, data: &forms_dnn::data::Dataset, batch_size: usize) -> f32 {
        assert!(batch_size > 0, "batch size must be positive");
        if data.is_empty() {
            return 0.0;
        }
        let mut correct = 0.0;
        for (x, labels) in data.batches(batch_size) {
            let logits = self.forward(&x);
            correct += forms_dnn::accuracy(&logits, labels) * labels.len() as f32;
        }
        correct / data.len() as f32
    }
}

/// Permutes matrix rows: `out[i] = in[perm[i]]`.
fn permute_rows(m: &Tensor, perm: &[usize]) -> Tensor {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(perm.len(), rows, "permutation length mismatch");
    let mut out = Tensor::zeros(&[rows, cols]);
    for (i, &src) in perm.iter().enumerate() {
        out.data_mut()[i * cols..(i + 1) * cols]
            .copy_from_slice(&m.data()[src * cols..(src + 1) * cols]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    /// Polarizes a network in place with the ADMM projection (iterated to a
    /// fixed point, since zeroing can retire rows and shift fragments) so
    /// it can be mapped.
    fn polarize_net(net: &mut Network, fragment: usize) {
        net.for_each_weight_layer(&mut |wl| {
            let mut z = match &wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            };
            while forms_admm::polarization_violations(&z, fragment) > 0 {
                let signs = forms_admm::fragment_signs(&z, fragment);
                z = forms_admm::project_polarization(&z, fragment, &signs);
            }
            match wl {
                WeightLayerMut::Conv(c) => c.set_weight_matrix(&z),
                WeightLayerMut::Linear(l) => l.set_weight_matrix(&z),
            }
        });
    }

    fn small_config(fragment: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: fragment,
                weight_bits: 8,
                cell: forms_reram::CellSpec::paper_2bit(),
                input_bits: 12,
                zero_skipping: true,
            },
            activation_bits: 12,
        }
    }

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::conv2d(&mut rng, 1, 4, 3, 1, 1),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(&mut rng, 4 * 4 * 4, 3),
        ])
    }

    #[test]
    fn unpolarized_network_is_rejected() {
        let net = small_net(0);
        let err = Accelerator::map_network(&net, small_config(4)).unwrap_err();
        assert!(matches!(err, MapError::NotPolarized { .. }));
    }

    #[test]
    fn mapped_network_tracks_digital_reference() {
        let mut net = small_net(1);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x = forms_tensor::uniform(&mut rng, &[2, 1, 8, 8], 0.5).map(f32::abs);
        let digital = net.clone().forward(&x);
        let analog = acc.forward(&x);
        assert_eq!(analog.dims(), digital.dims());
        let err = analog.max_abs_diff(&digital);
        let scale = digital.abs_max().max(1e-6);
        assert!(
            err / scale < 0.05,
            "analog diverges from digital: {err} (scale {scale})"
        );
    }

    #[test]
    fn residual_network_maps_and_runs() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = forms_dnn::ResidualBlock::new(
            vec![
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
                Layer::relu(),
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
            ],
            Some(Layer::conv2d(&mut rng, 2, 2, 1, 1, 0)),
        );
        let mut net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::relu(),
            Layer::Residual(block),
            Layer::flatten(),
            Layer::linear(&mut rng, 2 * 4 * 4, 2),
        ]);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32 / 16.0));
        let digital = net.clone().forward(&x);
        let analog = acc.forward(&x);
        let err = analog.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.08, "relative error {err}");
    }

    #[test]
    fn layer_perfs_feed_the_fps_model() {
        let mut net = small_net(12);
        polarize_net(&mut net, 4);
        let mut accel = Accelerator::map_network(&net, small_config(4)).unwrap();
        let images = 2;
        let x = Tensor::from_fn(&[images, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        accel.forward(&x);
        let perfs = accel.layer_perfs(images);
        assert_eq!(perfs.len(), 2); // conv + linear
        // Conv layer: 64 output positions per image; linear: 1.
        assert_eq!(perfs[0].positions, 64);
        assert_eq!(perfs[1].positions, 1);
        assert!(perfs.iter().all(|p| p.input_cycles >= 1.0 && p.crossbars > 0));
        // The perfs drive the FPS model directly.
        let fps = crate::FpsModel::new(forms_hwmodel::McuConfig::forms(4), perfs).fps();
        assert!(fps > 0.0);
    }

    #[test]
    fn parallel_forward_matches_serial() {
        let mut net = small_net(11);
        polarize_net(&mut net, 4);
        let mut serial = Accelerator::map_network(&net, small_config(4)).unwrap();
        let mut parallel = serial.clone();
        let x = Tensor::from_fn(&[5, 1, 8, 8], |i| (i % 9) as f32 / 9.0);
        let ys = serial.forward(&x);
        let yp = parallel.forward_parallel(&x, 3);
        assert_eq!(ys, yp);
        assert_eq!(serial.stats(), parallel.stats());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut net = small_net(4);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        acc.forward(&x);
        let s = acc.stats();
        assert!(s.cycles > 0 && s.adc_conversions > 0);
        assert!(s.cycles <= s.cycles_without_skip);
        acc.reset_stats();
        assert_eq!(acc.stats(), MvmStats::default());
    }

    #[test]
    fn variation_perturbs_outputs() {
        let mut net = small_net(5);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 7) as f32 / 8.0);
        let clean = acc.forward(&x);
        let mut rng = StdRng::seed_from_u64(6);
        acc.apply_variation(&forms_reram::LogNormalVariation::new(0.0, 0.3), &mut rng);
        let noisy = acc.forward(&x);
        assert!(
            clean.max_abs_diff(&noisy) > 0.0,
            "variation had no effect at sigma 0.3"
        );
    }

    /// Overwrites every weight layer with a fully dense polarized pattern
    /// (no zero rows, so fragment structure is permutation-stable).
    fn dense_polarize_net(net: &mut Network, fragment: usize) {
        net.for_each_weight_layer(&mut |wl| {
            let m = match &wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            };
            let (rows, cols) = (m.dims()[0], m.dims()[1]);
            let dense = Tensor::from_fn(&[rows, cols], |i| {
                let (r, c) = (i / cols, i % cols);
                let sign = if ((r / fragment) + c) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * (0.1 + ((r * 31 + c * 17) % 7) as f32 * 0.1)
            });
            match wl {
                WeightLayerMut::Conv(c) => c.set_weight_matrix(&dense),
                WeightLayerMut::Linear(l) => l.set_weight_matrix(&dense),
            }
        });
    }

    #[test]
    fn permuted_mapping_matches_identity_results() {
        // Mapping with a row permutation and permuting inputs must give the
        // same results as identity mapping (the paper's "re-order weights
        // with their corresponding inputs" invariant).
        let mut net = small_net(7);
        dense_polarize_net(&mut net, 4); // dense, polarized in natural order
        let count = net.clone().weight_layer_count();
        let identity = Accelerator::map_network(&net, small_config(4)).unwrap();
        // An involutive permutation that preserves fragments: swap adjacent
        // pairs within each fragment of 4.
        let mut perms = Vec::new();
        {
            let mut n = net.clone();
            n.for_each_weight_layer(&mut |wl| {
                let rows = match wl {
                    WeightLayerMut::Conv(c) => c.weight_matrix().dims()[0],
                    WeightLayerMut::Linear(l) => l.weight_matrix().dims()[0],
                };
                // Swap adjacent pairs; an odd trailing row maps to itself.
                let perm: Vec<usize> = (0..rows)
                    .map(|i| {
                        if i % 2 == 0 && i + 1 < rows {
                            i + 1
                        } else if i % 2 == 1 {
                            i - 1
                        } else {
                            i
                        }
                    })
                    .collect();
                perms.push(Some(perm));
            });
        }
        assert_eq!(perms.len(), count);
        let permuted = Accelerator::with_permutations(&net, small_config(4), perms).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 3) as f32 / 4.0);
        let mut a = identity;
        let mut b = permuted;
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        assert!(ya.allclose(&yb, 1e-4), "permutation changed results");
    }
}
