//! End-to-end FORMS accelerator simulation: a whole DNN mapped onto
//! polarized crossbars and executed through the mixed-signal path.
//!
//! The network walk, im2col, activation quantization and batch execution
//! live in the shared execution core ([`forms_exec::Executor`]); this
//! module binds it to the polarized [`MappedLayer`] engine and adds the
//! FORMS-specific pieces — mapping configuration, row-permutation
//! construction and device-variation injection (§V-E).
//!
//! Convolution and linear layers run on [`MappedLayer`]s (im2col → bit-
//! serial crossbar MVMs → sign-indicator accumulation); pooling, ReLU,
//! batch-norm and the residual adds run in the digital units, exactly as in
//! the paper's tile (Fig. 10).
//!
//! Activations must be non-negative (the post-ReLU guarantee the paper's
//! designs rely on); quantization clamps at zero.

use forms_exec::{ExecError, Executor, PrecisionPlan};
use forms_reram::LogNormalVariation;
use forms_rng::Rng;
use forms_tensor::Tensor;

use crate::mapping::{MappedLayer, MappingConfig, MvmStats};

/// Accelerator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcceleratorConfig {
    /// Crossbar mapping parameters.
    pub mapping: MappingConfig,
    /// Activation quantization bits (16 in the paper).
    pub activation_bits: u32,
}

impl AcceleratorConfig {
    /// The paper's evaluation point at a fragment size.
    pub fn paper(fragment_size: usize) -> Self {
        Self {
            mapping: MappingConfig::paper(fragment_size),
            activation_bits: 16,
        }
    }
}

/// A DNN mapped onto the FORMS accelerator.
///
/// A thin wrapper over the shared [`Executor`] driving [`MappedLayer`]
/// engines: it holds a copy of the network (for the digital layers and
/// layer shapes) plus one mapped layer per weight layer, and executes
/// inference through the analog path while accumulating cycle statistics.
#[derive(Clone, Debug)]
pub struct Accelerator {
    exec: Executor<MappedLayer>,
    config: AcceleratorConfig,
}

impl Accelerator {
    /// Maps a network with identity row order (W-major polarization).
    ///
    /// # Errors
    ///
    /// Returns the first layer's [`ExecError`] if any weight layer is not
    /// polarized (or is all zero).
    pub fn map_network(
        net: &forms_dnn::Network,
        config: AcceleratorConfig,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            exec: Executor::map_network(net, &config.mapping, config.activation_bits)?,
            config,
        })
    }

    /// Maps a network whose polarization was trained under per-layer row
    /// permutations (H-/C-major policies). `perms[i]` must be the policy
    /// permutation of weight layer `i` in visit order (`None` = identity),
    /// exactly as produced by `forms_admm::row_permutation`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a layer cannot be mapped.
    ///
    /// # Panics
    ///
    /// Panics if `perms.len()` differs from the weight-layer count.
    pub fn with_permutations(
        net: &forms_dnn::Network,
        config: AcceleratorConfig,
        perms: Vec<Option<Vec<usize>>>,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            exec: Executor::with_permutations(net, &config.mapping, config.activation_bits, perms)?,
            config,
        })
    }

    /// Maps a network under a per-layer [`PrecisionPlan`]: weight layer
    /// `i` maps at `plan.layer(i)`'s widths (the rest of `config.mapping`
    /// — crossbar dimension, fragment size, cell spec, zero-skipping — is
    /// shared) and quantizes its activations at `plan.layer(i).input_bits`
    /// (`config.activation_bits` is superseded by the plan). A uniform
    /// plan at the configuration's own widths is bitwise identical to
    /// [`map_network`](Self::map_network).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a layer cannot be mapped.
    ///
    /// # Panics
    ///
    /// Panics if a per-layer plan's length differs from the weight-layer
    /// count.
    pub fn with_plan(
        net: &forms_dnn::Network,
        config: AcceleratorConfig,
        plan: PrecisionPlan,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            exec: Executor::with_plan(net, &config.mapping, plan)?,
            config,
        })
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The precision plan every layer was mapped and quantized under.
    pub fn plan(&self) -> &PrecisionPlan {
        self.exec.plan()
    }

    /// The mapping configuration each weight layer was actually mapped
    /// with (the plan-specialized per-layer view of `config.mapping`).
    pub fn layer_configs(&self) -> &[MappingConfig] {
        self.exec.layer_configs()
    }

    /// The mapped weight layers, in visit order.
    pub fn mapped_layers(&self) -> &[MappedLayer] {
        self.exec.engines()
    }

    /// Mutable access to the mapped layers (variation/fault injection).
    pub fn mapped_layers_mut(&mut self) -> &mut [MappedLayer] {
        self.exec.engines_mut()
    }

    /// Total physical crossbars used by the whole network.
    pub fn total_crossbars(&self) -> usize {
        self.exec.total_crossbars()
    }

    /// Accumulated MVM statistics since the last reset.
    pub fn stats(&self) -> MvmStats {
        self.exec.stats()
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.exec.reset_stats();
    }

    /// Accumulated statistics per weight layer (visit order) since the
    /// last reset.
    pub fn layer_stats(&self) -> &[MvmStats] {
        self.exec.layer_stats()
    }

    /// Matrix-vector activations per weight layer since the last reset.
    pub fn layer_mvms(&self) -> &[u64] {
        self.exec.layer_mvms()
    }

    /// Builds the per-layer inputs of the frame-rate model from the
    /// statistics of the inferences run so far: each layer's measured mean
    /// EIC, its crossbar footprint and its matrix-vector activations per
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if no inference has been run since the last reset or
    /// `images` is zero.
    pub fn layer_perfs(&self, images: usize) -> Vec<crate::LayerPerf> {
        self.exec.layer_perfs(images)
    }

    /// Applies log-normal device variation to every crossbar of every
    /// layer (paper §V-E).
    pub fn apply_variation<R: Rng + ?Sized>(&mut self, v: &LogNormalVariation, rng: &mut R) {
        for layer in self.exec.engines_mut() {
            for xbar in layer.crossbars_mut() {
                v.apply(xbar, rng);
            }
        }
    }

    /// Runs inference on a `[N, ...]` batch through the mixed-signal path.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.exec.forward(x)
    }

    /// [`forward`](Self::forward) through the batched hot path: each
    /// weight layer lowers the whole batch and runs as one
    /// [`MappedLayer::matmul_into`](crate::MappedLayer::matmul_into) call.
    /// Bitwise identical to [`forward`](Self::forward).
    pub fn forward_batched(&mut self, x: &Tensor) -> Tensor {
        self.exec.forward_batched(x)
    }

    /// Runs inference on a `[N, ...]` batch with samples distributed over
    /// worker threads (one accelerator clone per worker — the crossbars are
    /// read-only during inference, so results are identical to
    /// [`forward`](Self::forward)). Statistics from all workers are merged.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn forward_parallel(&mut self, x: &Tensor, workers: usize) -> Tensor {
        self.exec.forward_parallel(x, workers)
    }

    /// Classification accuracy of the mapped model on a dataset.
    pub fn evaluate(&mut self, data: &forms_dnn::data::Dataset, batch_size: usize) -> f32 {
        self.exec.evaluate(data, batch_size)
    }

    /// [`evaluate`](Self::evaluate) with each batch distributed over
    /// `workers` threads through the shared executor's parallel path; the
    /// accuracy is bitwise identical to the serial run.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `workers` is zero.
    pub fn evaluate_parallel(
        &mut self,
        data: &forms_dnn::data::Dataset,
        batch_size: usize,
        workers: usize,
    ) -> f32 {
        self.exec.evaluate_parallel(data, batch_size, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_dnn::{Layer, Network, WeightLayerMut};
    use forms_rng::StdRng;

    /// Polarizes a network in place with the ADMM projection (iterated to a
    /// fixed point, since zeroing can retire rows and shift fragments) so
    /// it can be mapped.
    fn polarize_net(net: &mut Network, fragment: usize) {
        net.for_each_weight_layer(&mut |wl| {
            let mut z = match &wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            };
            while forms_admm::polarization_violations(&z, fragment) > 0 {
                let signs = forms_admm::fragment_signs(&z, fragment);
                z = forms_admm::project_polarization(&z, fragment, &signs);
            }
            match wl {
                WeightLayerMut::Conv(c) => c.set_weight_matrix(&z),
                WeightLayerMut::Linear(l) => l.set_weight_matrix(&z),
            }
        });
    }

    fn small_config(fragment: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: fragment,
                weight_bits: 8,
                cell: forms_reram::CellSpec::paper_2bit(),
                input_bits: 12,
                zero_skipping: true,
            },
            activation_bits: 12,
        }
    }

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::conv2d(&mut rng, 1, 4, 3, 1, 1),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(&mut rng, 4 * 4 * 4, 3),
        ])
    }

    #[test]
    fn unpolarized_network_is_rejected() {
        let net = small_net(0);
        let err = Accelerator::map_network(&net, small_config(4)).unwrap_err();
        assert!(matches!(err, ExecError::NotPolarized { .. }));
    }

    #[test]
    fn mapped_network_tracks_digital_reference() {
        let mut net = small_net(1);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x = forms_tensor::uniform(&mut rng, &[2, 1, 8, 8], 0.5).map(f32::abs);
        let digital = net.clone().forward(&x);
        let analog = acc.forward(&x);
        assert_eq!(analog.dims(), digital.dims());
        let err = analog.max_abs_diff(&digital);
        let scale = digital.abs_max().max(1e-6);
        assert!(
            err / scale < 0.05,
            "analog diverges from digital: {err} (scale {scale})"
        );
    }

    #[test]
    fn residual_network_maps_and_runs() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = forms_dnn::ResidualBlock::new(
            vec![
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
                Layer::relu(),
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
            ],
            Some(Layer::conv2d(&mut rng, 2, 2, 1, 1, 0)),
        );
        let mut net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::relu(),
            Layer::Residual(block),
            Layer::flatten(),
            Layer::linear(&mut rng, 2 * 4 * 4, 2),
        ]);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32 / 16.0);
        let digital = net.clone().forward(&x);
        let analog = acc.forward(&x);
        let err = analog.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.08, "relative error {err}");
    }

    #[test]
    fn layer_perfs_feed_the_fps_model() {
        let mut net = small_net(12);
        polarize_net(&mut net, 4);
        let mut accel = Accelerator::map_network(&net, small_config(4)).unwrap();
        let images = 2;
        let x = Tensor::from_fn(&[images, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        accel.forward(&x);
        let perfs = accel.layer_perfs(images);
        assert_eq!(perfs.len(), 2); // conv + linear
                                    // Conv layer: 64 output positions per image; linear: 1.
        assert_eq!(perfs[0].positions, 64);
        assert_eq!(perfs[1].positions, 1);
        assert!(perfs
            .iter()
            .all(|p| p.input_cycles >= 1.0 && p.crossbars > 0));
        // The perfs drive the FPS model directly.
        let fps = crate::FpsModel::new(forms_hwmodel::McuConfig::forms(4), perfs).fps();
        assert!(fps > 0.0);
    }

    #[test]
    fn parallel_forward_matches_serial() {
        let mut net = small_net(11);
        polarize_net(&mut net, 4);
        let mut serial = Accelerator::map_network(&net, small_config(4)).unwrap();
        let mut parallel = serial.clone();
        let x = Tensor::from_fn(&[5, 1, 8, 8], |i| (i % 9) as f32 / 9.0);
        let ys = serial.forward(&x);
        let yp = parallel.forward_parallel(&x, 3);
        assert_eq!(ys, yp);
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.layer_stats(), parallel.layer_stats());
        assert_eq!(serial.layer_mvms(), parallel.layer_mvms());
    }

    #[test]
    fn parallel_evaluate_matches_serial() {
        let mut rng = StdRng::seed_from_u64(13);
        let spec = forms_dnn::data::SyntheticSpec {
            classes: 3,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 2,
            test_per_class: 4,
            noise: 0.1,
        };
        let (_, test) = spec.generate(&mut rng);
        let mut net = small_net(14);
        polarize_net(&mut net, 4);
        let mut serial = Accelerator::map_network(&net, small_config(4)).unwrap();
        let mut parallel = serial.clone();
        let a = serial.evaluate(&test, 4);
        let b = parallel.evaluate_parallel(&test, 4, 3);
        assert_eq!(a, b);
        assert_eq!(serial.stats(), parallel.stats());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut net = small_net(4);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        acc.forward(&x);
        let s = acc.stats();
        assert!(s.cycles > 0 && s.adc_conversions > 0);
        assert!(s.cycles <= s.cycles_without_skip);
        acc.reset_stats();
        assert_eq!(acc.stats(), MvmStats::default());
    }

    #[test]
    fn variation_perturbs_outputs() {
        let mut net = small_net(5);
        polarize_net(&mut net, 4);
        let mut acc = Accelerator::map_network(&net, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 7) as f32 / 8.0);
        let clean = acc.forward(&x);
        let mut rng = StdRng::seed_from_u64(6);
        acc.apply_variation(&forms_reram::LogNormalVariation::new(0.0, 0.3), &mut rng);
        let noisy = acc.forward(&x);
        assert!(
            clean.max_abs_diff(&noisy) > 0.0,
            "variation had no effect at sigma 0.3"
        );
    }

    /// Overwrites every weight layer with a fully dense polarized pattern
    /// (no zero rows, so fragment structure is permutation-stable).
    fn dense_polarize_net(net: &mut Network, fragment: usize) {
        net.for_each_weight_layer(&mut |wl| {
            let m = match &wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            };
            let (rows, cols) = (m.dims()[0], m.dims()[1]);
            let dense = Tensor::from_fn(&[rows, cols], |i| {
                let (r, c) = (i / cols, i % cols);
                let sign = if ((r / fragment) + c).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                sign * (0.1 + ((r * 31 + c * 17) % 7) as f32 * 0.1)
            });
            match wl {
                WeightLayerMut::Conv(c) => c.set_weight_matrix(&dense),
                WeightLayerMut::Linear(l) => l.set_weight_matrix(&dense),
            }
        });
    }

    #[test]
    fn permuted_mapping_matches_identity_results() {
        // Mapping with a row permutation and permuting inputs must give the
        // same results as identity mapping (the paper's "re-order weights
        // with their corresponding inputs" invariant).
        let mut net = small_net(7);
        dense_polarize_net(&mut net, 4); // dense, polarized in natural order
        let count = net.weight_layer_count();
        let identity = Accelerator::map_network(&net, small_config(4)).unwrap();
        // An involutive permutation that preserves fragments: swap adjacent
        // pairs within each fragment of 4.
        let mut perms = Vec::new();
        {
            let mut n = net.clone();
            n.for_each_weight_layer(&mut |wl| {
                let rows = match wl {
                    WeightLayerMut::Conv(c) => c.weight_matrix().dims()[0],
                    WeightLayerMut::Linear(l) => l.weight_matrix().dims()[0],
                };
                // Swap adjacent pairs; an odd trailing row maps to itself.
                let perm: Vec<usize> = (0..rows)
                    .map(|i| {
                        if i % 2 == 0 && i + 1 < rows {
                            i + 1
                        } else if i % 2 == 1 {
                            i - 1
                        } else {
                            i
                        }
                    })
                    .collect();
                perms.push(Some(perm));
            });
        }
        assert_eq!(perms.len(), count);
        let permuted = Accelerator::with_permutations(&net, small_config(4), perms).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 3) as f32 / 4.0);
        let mut a = identity;
        let mut b = permuted;
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        assert!(ya.allclose(&yb, 1e-4), "permutation changed results");
    }
}
