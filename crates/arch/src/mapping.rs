//! The polarized crossbar mapping scheme (paper §IV-A, Fig. 5).
//!
//! A structurally pruned, polarized, quantized weight matrix is compacted
//! (zero rows/columns dropped), its magnitudes quantized to sign-magnitude
//! codes, bit-sliced over multi-bit cells and programmed onto 128×128
//! physical crossbars partitioned into `fragment_size`-row logical
//! sub-arrays. Each fragment's single sign bit lives in the 1R *sign
//! indicator* and is applied during digital accumulation.

use forms_exec::{CrossbarEngine, EngineHealth, ExecError, FaultableEngine, Merge};
use forms_reram::{
    for_each_set_bit, pack_bit_planes, pack_tile_bit_planes, plane_is_zero, Adc, BitSlicer,
    CellSpec, Crossbar, CurrentNoise, FaultCampaign, FaultReport,
};
use forms_rng::Rng;
use forms_tensor::Tensor;

use crate::zero_skip::{fragment_eic, ShiftRegisterBank};

/// Configuration of the mapping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MappingConfig {
    /// Physical crossbar dimension (128 in the paper).
    pub crossbar_dim: usize,
    /// Sub-array rows = weights per fragment (4/8/16).
    pub fragment_size: usize,
    /// Magnitude bits stored per weight (8 in the paper's evaluation).
    pub weight_bits: u32,
    /// The ReRAM cell specification (2-bit cells in the paper).
    pub cell: CellSpec,
    /// Input (activation) bits (16 in the paper's evaluation).
    pub input_bits: u32,
    /// Whether the zero-skipping logic is active.
    pub zero_skipping: bool,
}

impl MappingConfig {
    /// The paper's evaluation point at a given fragment size: 128×128
    /// crossbars, 2-bit cells, 8-bit weights, 16-bit inputs, zero-skipping
    /// on.
    ///
    /// # Panics
    ///
    /// Panics if `fragment_size` does not divide 128.
    pub fn paper(fragment_size: usize) -> Self {
        assert!(
            fragment_size > 0 && 128 % fragment_size == 0,
            "fragment size must divide the crossbar dimension"
        );
        Self {
            crossbar_dim: 128,
            fragment_size,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 16,
            zero_skipping: true,
        }
    }

    /// Cells per weight.
    pub fn cells_per_weight(&self) -> usize {
        self.weight_bits.div_ceil(self.cell.bits()) as usize
    }

    /// Weight columns per physical crossbar.
    pub fn weights_per_crossbar_row(&self) -> usize {
        self.crossbar_dim / self.cells_per_weight()
    }

    /// Fragments stacked per physical crossbar column.
    pub fn fragments_per_crossbar_col(&self) -> usize {
        self.crossbar_dim / self.fragment_size
    }
}

/// Statistics of one mapped matrix-vector multiplication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvmStats {
    /// Input shift cycles actually spent.
    pub cycles: u64,
    /// Cycles a non-skipping design would have spent.
    pub cycles_without_skip: u64,
    /// ADC conversions performed.
    pub adc_conversions: u64,
    /// Fragments whose inputs were entirely zero (skipped outright).
    pub fragments_skipped: u64,
    /// Fragment activations processed.
    pub fragments_total: u64,
}

impl Merge for MvmStats {
    fn merge(&mut self, other: MvmStats) {
        self.cycles += other.cycles;
        self.cycles_without_skip += other.cycles_without_skip;
        self.adc_conversions += other.adc_conversions;
        self.fragments_skipped += other.fragments_skipped;
        self.fragments_total += other.fragments_total;
    }
}

impl MvmStats {
    /// Fraction of input cycles saved by zero-skipping.
    pub fn cycles_saved_fraction(&self) -> f64 {
        if self.cycles_without_skip == 0 {
            0.0
        } else {
            1.0 - self.cycles as f64 / self.cycles_without_skip as f64
        }
    }

    /// Converts the statistics into a [`forms_hwmodel::Activity`] record
    /// for energy accounting under a mapping configuration.
    pub fn activity(&self, config: &MappingConfig) -> forms_hwmodel::Activity {
        forms_hwmodel::Activity {
            shift_cycles: self.cycles,
            adc_conversions: self.adc_conversions,
            rows_per_cycle: config.fragment_size as u64,
            cells_per_conversion: config.cells_per_weight() as u64,
            shift_add_ops: self.adc_conversions,
        }
    }

    /// Dynamic energy of this activity on an MCU configuration, in pJ.
    pub fn energy_pj(&self, config: &MappingConfig, mcu: &forms_hwmodel::McuConfig) -> f64 {
        use forms_hwmodel::DynamicActivity;
        FormsActivity {
            stats: *self,
            config: *config,
        }
        .energy_pj(mcu)
    }
}

/// FORMS statistics bound to their mapping configuration — the
/// [`forms_hwmodel::DynamicActivity`] record through which FORMS costs
/// reach the shared energy model (ISAAC's counterpart is
/// `forms_baselines::IsaacActivity`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FormsActivity {
    /// The accumulated MVM statistics.
    pub stats: MvmStats,
    /// The mapping configuration the statistics were produced under.
    pub config: MappingConfig,
}

impl forms_hwmodel::DynamicActivity for FormsActivity {
    fn activity(&self) -> forms_hwmodel::Activity {
        self.stats.activity(&self.config)
    }
}

/// Samples per tile of the blocked [`MappedLayer::matmul_into`] kernel.
///
/// Each fragment's weight window is rebuilt once per tile and swept over
/// all of the tile's samples, so the tile size trades window-build
/// amortization against working-set residency. At the paper's full shape
/// (fragment 8, 128 columns × 4 cells) one tile holds an 8×512 integer
/// window (8 KiB), 32 packed plane sets and 32×128 accumulators — around
/// 64 KiB, comfortably inside L2 — while paying each window build only
/// once per 32 samples.
pub const MATMUL_TILE: usize = 32;

/// Reusable working memory of one [`MappedLayer`] MVM.
///
/// Owned by the caller (one per inference worker) and grown on first use;
/// with a warm scratch the packed kernel performs no heap allocation. The
/// default value is an empty scratch that fits any layer.
#[derive(Clone, Debug, Default)]
pub struct MvmScratch {
    /// Gathered input codes of the current fragment.
    codes: Vec<u32>,
    /// Packed bit planes of the fragment's codes, LSB plane first
    /// (`words` u64 words per plane — see [`pack_bit_planes`]).
    planes: Vec<u64>,
    /// Raw pre-ADC column currents, plane-major: plane `cycle` covers
    /// `cycle * cell_cols ..` over all mapped cell columns.
    currents: Vec<f64>,
    /// Per-slice shift-&-add accumulators of the current weight column.
    slice_acc: Vec<u64>,
    /// Signed digital accumulators, one per compact weight column.
    accs: Vec<i64>,
    /// Dequantized cell values of the current fragment window, row-major
    /// over all mapped cell columns — the division by the conductance step
    /// is paid once per cell instead of once per cell per input cycle.
    cell_vals: Vec<f64>,
    /// Batched path: gathered fragment codes of one tile of samples,
    /// sample-major.
    tile_codes: Vec<u32>,
    /// Batched path: effective input cycles per sample of the tile.
    tile_eic: Vec<u32>,
    /// Batched path: packed bit planes of the whole tile (see
    /// [`pack_tile_bit_planes`]).
    tile_planes: Vec<u64>,
    /// Batched fast path: integer image of the fragment window (see
    /// [`Crossbar::integral_dequant_codes`]).
    icell: Vec<u16>,
    /// Batched fast path: integer column currents of one shift cycle.
    icurr: Vec<u32>,
    /// Batched fast path: per-cell-column shift-&-add accumulators of one
    /// sample.
    cell_acc: Vec<u64>,
}

/// Accumulates one active window row into the integer column currents.
#[inline]
fn add_row_u16(icurr: &mut [u32], row: &[u16]) {
    for (acc, &v) in icurr.iter_mut().zip(row) {
        *acc += u32::from(v);
    }
}

/// Accumulates one active window row into the f64 column currents.
#[inline]
fn add_row_f64(currents: &mut [f64], vals: &[f64]) {
    for (acc, &v) in currents.iter_mut().zip(vals) {
        *acc += v;
    }
}

/// A weight matrix mapped onto polarized physical crossbars.
///
/// Constructed from a *fragment-polarized* `[rows, cols]` matrix (rows in
/// policy order); [`matvec`](Self::matvec) then executes the full
/// mixed-signal path — shift registers, 1-bit DACs, fragment-windowed
/// column currents, per-slice ADC conversion, shift-&-add recombination and
/// sign-indicator-controlled digital accumulation.
#[derive(Clone, Debug)]
pub struct MappedLayer {
    config: MappingConfig,
    /// Map compact row index → original row index.
    row_index: Vec<usize>,
    /// Map compact column index → original column index.
    col_index: Vec<usize>,
    /// Original matrix dimensions.
    orig_rows: usize,
    orig_cols: usize,
    /// Weight quantization step (value of magnitude code 1).
    step: f32,
    /// Sign per (compact column, fragment): `true` = positive.
    signs: Vec<bool>,
    fragments_per_col: usize,
    /// Physical crossbar grid, row-major `[xb_rows × xb_cols]`.
    crossbars: Vec<Crossbar>,
    xb_cols: usize,
    adc: Adc,
    slicer: BitSlicer,
    /// Pristine nominal output ceiling: `max_col Σ|code| × max_input ×
    /// step` — what no clean MVM output can exceed (per unit input scale).
    ceiling: f64,
    /// Cumulative stuck cells injected through [`inject_faults`](FaultableEngine::inject_faults).
    faulted_cells: u64,
    /// Cumulative drifted cells injected likewise.
    drifted_cells: u64,
}

impl MappedLayer {
    /// Maps a polarized weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotPolarized`] if any fragment mixes signs,
    /// [`ExecError::AllZero`] for an all-zero matrix,
    /// [`ExecError::NotMatrix`] when `matrix` is not rank-2 and
    /// [`ExecError::UnsupportedConfig`] when the fragment size does not
    /// divide the crossbar dimension.
    pub fn map(matrix: &Tensor, config: MappingConfig) -> Result<Self, ExecError> {
        if matrix.shape().rank() != 2 {
            return Err(ExecError::NotMatrix {
                rank: matrix.shape().rank(),
            });
        }
        if config.fragment_size == 0 || !config.crossbar_dim.is_multiple_of(config.fragment_size) {
            return Err(ExecError::UnsupportedConfig {
                reason: "fragment size must divide the crossbar dimension",
            });
        }
        let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
        let m = config.fragment_size;

        // Structural compaction: drop all-zero rows and columns.
        let nz = |r: usize, c: usize| matrix.data()[r * cols + c] != 0.0;
        let row_index: Vec<usize> = (0..rows).filter(|&r| (0..cols).any(|c| nz(r, c))).collect();
        let col_index: Vec<usize> = (0..cols).filter(|&c| (0..rows).any(|r| nz(r, c))).collect();
        if row_index.is_empty() || col_index.is_empty() {
            return Err(ExecError::AllZero);
        }

        let compact_rows = row_index.len();
        let compact_cols = col_index.len();
        let fragments_per_col = compact_rows.div_ceil(m);

        // Polarization check + sign extraction on the compact matrix.
        let mut signs = Vec::with_capacity(compact_cols * fragments_per_col);
        let mut violations = 0usize;
        for &c in &col_index {
            for frag in 0..fragments_per_col {
                let lo = frag * m;
                let hi = (lo + m).min(compact_rows);
                let vals: Vec<f32> = (lo..hi)
                    .map(|i| matrix.data()[row_index[i] * cols + c])
                    .collect();
                let sum: f32 = vals.iter().sum();
                let positive = sum >= 0.0;
                violations += vals
                    .iter()
                    .filter(|&&v| if positive { v < 0.0 } else { v > 0.0 })
                    .count();
                signs.push(positive);
            }
        }
        if violations > 0 {
            return Err(ExecError::NotPolarized { violations });
        }

        // Magnitude quantization.
        let abs_max = matrix.abs_max();
        let max_code = ((1u64 << config.weight_bits) - 1) as f32;
        let step = if abs_max > 0.0 {
            abs_max / max_code
        } else {
            1.0
        };
        let slicer = BitSlicer::new(config.weight_bits, config.cell.bits());
        let cpw = config.cells_per_weight();

        // Physical crossbar grid.
        let dim = config.crossbar_dim;
        let padded_rows = fragments_per_col * m;
        let xb_rows = padded_rows.div_ceil(dim);
        let xb_cols = (compact_cols * cpw).div_ceil(dim);
        let mut crossbars = vec![Crossbar::new(dim, dim, config.cell); xb_rows * xb_cols];

        let mut col_code_sums = vec![0u64; compact_cols];
        for (ci, &c) in col_index.iter().enumerate() {
            for (ri, &r) in row_index.iter().enumerate() {
                let w = matrix.data()[r * cols + c];
                if w == 0.0 {
                    continue;
                }
                let code = ((w.abs() / step).round() as u32).min(max_code as u32);
                col_code_sums[ci] += u64::from(code);
                let slices = slicer.slice(code);
                let (xr, row_in_xb) = (ri / dim, ri % dim);
                for (k, &s) in slices.iter().enumerate() {
                    let cell_col = ci * cpw + k;
                    let (xc, col_in_xb) = (cell_col / dim, cell_col % dim);
                    crossbars[xr * xb_cols + xc].program_cell(row_in_xb, col_in_xb, s);
                }
            }
        }

        // Pristine output ceiling: every fragment of a column contributes
        // with one sign, so |Σ ±frag| ≤ Σ|code|, and inputs are at most the
        // full-scale code. A clean MVM can never exceed this bound; a
        // stuck-high or sign-corrupted array can.
        let max_input = ((1u64 << config.input_bits) - 1) as f64;
        let ceiling = col_code_sums
            .iter()
            .map(|&s| s as f64 * max_input * f64::from(step))
            .fold(0.0f64, f64::max);

        let adc = Adc::for_fragment(m, &config.cell);
        Ok(Self {
            config,
            row_index,
            col_index,
            orig_rows: rows,
            orig_cols: cols,
            step,
            signs,
            fragments_per_col,
            crossbars,
            xb_cols,
            adc,
            slicer,
            ceiling,
            faulted_cells: 0,
            drifted_cells: 0,
        })
    }

    /// The mapping configuration.
    pub fn config(&self) -> &MappingConfig {
        &self.config
    }

    /// The weight quantization step.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Number of physical crossbars used.
    pub fn crossbar_count(&self) -> usize {
        self.crossbars.len()
    }

    /// Number of fragments per weight column.
    pub fn fragments_per_col(&self) -> usize {
        self.fragments_per_col
    }

    /// Number of sign-indicator bits (one per fragment per column).
    pub fn sign_bits(&self) -> usize {
        self.signs.len()
    }

    /// Mutable access to the physical crossbars, for variation and fault
    /// injection.
    pub fn crossbars_mut(&mut self) -> &mut [Crossbar] {
        &mut self.crossbars
    }

    /// Read access to the physical crossbars.
    pub fn crossbars(&self) -> &[Crossbar] {
        &self.crossbars
    }

    /// Reconstructs the (quantized) weight matrix this mapping represents,
    /// in original `[rows, cols]` indexing — the digital reference for the
    /// analog path.
    pub fn dequantized_matrix(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.orig_rows, self.orig_cols]);
        let cpw = self.config.cells_per_weight();
        let dim = self.config.crossbar_dim;
        for (ci, &c) in self.col_index.iter().enumerate() {
            for (ri, &r) in self.row_index.iter().enumerate() {
                let (xr, row_in_xb) = (ri / dim, ri % dim);
                let mut slices = Vec::with_capacity(cpw);
                for k in 0..cpw {
                    let cell_col = ci * cpw + k;
                    let (xc, col_in_xb) = (cell_col / dim, cell_col % dim);
                    slices.push(
                        self.crossbars[xr * self.xb_cols + xc].read_cell(row_in_xb, col_in_xb)
                            as u64,
                    );
                }
                let code = self.slicer.recombine(&slices);
                let frag = ri / self.config.fragment_size;
                let sign = if self.signs[ci * self.fragments_per_col + frag] {
                    1.0
                } else {
                    -1.0
                };
                out.data_mut()[r * self.orig_cols + c] = sign * code as f32 * self.step;
            }
        }
        out
    }

    /// Executes the mixed-signal matrix-vector product on quantized input
    /// codes (length = original rows; codes of pruned rows are ignored).
    ///
    /// `input_scale` is the value of input code 1; the result is in real
    /// units (`scale × step × integer dot product`), length = original
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if `input_codes.len()` differs from the original row count or
    /// any code exceeds `input_bits`.
    pub fn matvec(&self, input_codes: &[u32], input_scale: f32) -> (Vec<f32>, MvmStats) {
        let mut scratch = MvmScratch::default();
        let mut out = vec![0.0f32; self.orig_cols];
        let stats = self.matvec_into(input_codes, input_scale, &mut scratch, &mut out);
        (out, stats)
    }

    /// The allocation-free hot path: [`matvec`](Self::matvec) into a
    /// caller-owned output buffer (length = original columns, overwritten)
    /// with caller-owned reusable [`MvmScratch`].
    ///
    /// # Panics
    ///
    /// Panics as [`matvec`](Self::matvec) does, and if `out.len()` differs
    /// from the original column count.
    pub fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut MvmScratch,
        out: &mut [f32],
    ) -> MvmStats {
        self.matvec_packed(input_codes, input_scale, |c| c, scratch, out)
    }

    /// Like [`matvec`](Self::matvec) but with additive read noise on every
    /// column current before ADC conversion (paper refs. \[31, 32\]; the
    /// fine-vs-coarse susceptibility argument of §II-C).
    ///
    /// # Panics
    ///
    /// Panics as [`matvec`](Self::matvec) does.
    pub fn matvec_noisy<R: Rng + ?Sized>(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        noise: &CurrentNoise,
        rng: &mut R,
    ) -> (Vec<f32>, MvmStats) {
        let mut scratch = MvmScratch::default();
        let mut out = vec![0.0f32; self.orig_cols];
        let stats = self.matvec_packed(
            input_codes,
            input_scale,
            |c| noise.perturb(c, rng),
            &mut scratch,
            &mut out,
        );
        (out, stats)
    }

    /// The legacy allocating kernel, kept as the bitwise oracle for the
    /// packed path and as the pre-optimization baseline for the MVM
    /// benchmark. Results are bitwise identical to
    /// [`matvec`](Self::matvec).
    ///
    /// # Panics
    ///
    /// Panics as [`matvec`](Self::matvec) does.
    pub fn matvec_reference(&self, input_codes: &[u32], input_scale: f32) -> (Vec<f32>, MvmStats) {
        self.matvec_impl(input_codes, input_scale, |c| c)
    }

    /// [`matvec_noisy`](Self::matvec_noisy) through the legacy allocating
    /// kernel — the bitwise oracle for the noisy packed path (the noise
    /// draw order is preserved, so the same RNG seed yields bitwise equal
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics as [`matvec`](Self::matvec) does.
    pub fn matvec_noisy_reference<R: Rng + ?Sized>(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        noise: &CurrentNoise,
        rng: &mut R,
    ) -> (Vec<f32>, MvmStats) {
        self.matvec_impl(input_codes, input_scale, |c| noise.perturb(c, rng))
    }

    /// Whether the batched kernel may run its integer fast path: every
    /// mapped cell dequantizes to an exact integer code (no conductance
    /// drift) *and* the ADC is lossless over the fragment's current range
    /// (full scale on the top code, range covering `fragment_size ×
    /// max_cell_code`). Under those conditions ADC conversion is the
    /// identity on every current the array can produce, so integer
    /// accumulation is bitwise identical to the f64 path.
    pub fn integer_matmul_path(&self) -> bool {
        let max_window = self.config.fragment_size as u64 * u64::from(self.config.cell.max_code());
        self.adc.full_scale() == f64::from(self.adc.levels() - 1)
            && max_window as f64 <= self.adc.full_scale()
            && self
                .crossbars
                .iter()
                .all(|x| x.integral_dequant_codes().is_some())
    }

    /// The blocked weight-stationary batch kernel: executes
    /// `scales.len()` matrix-vector products in one sweep, bitwise
    /// identical to calling [`matvec_into`](Self::matvec_into) once per
    /// sample (outputs *and* merged stats).
    ///
    /// `batch_codes` holds the samples' input codes sample-major
    /// (`scales.len() × original rows`); `outs` receives the concatenated
    /// outputs (`scales.len() × original columns`, overwritten).
    ///
    /// Samples are processed in tiles of [`MATMUL_TILE`]; per fragment the
    /// weight window is materialized once per tile and swept over every
    /// sample, instead of once per sample as the per-sample path must.
    /// Pristine arrays additionally take an integer fast path (see
    /// [`integer_matmul_path`](Self::integer_matmul_path)) that replaces
    /// per-current ADC division with exact integer adds and skips planes
    /// whose packed input bits are all zero; drifted arrays fall back to
    /// an f64 path that preserves the per-sample ascending-row summation
    /// order, keeping results bitwise identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are inconsistent with `scales.len()`
    /// or any input code exceeds `input_bits`.
    pub fn matmul_into(
        &self,
        batch_codes: &[u32],
        scales: &[f32],
        scratch: &mut MvmScratch,
        outs: &mut [f32],
    ) -> MvmStats {
        let mut stats = MvmStats::default();
        if scales.is_empty() {
            assert!(batch_codes.is_empty(), "codes without scales");
            assert!(outs.is_empty(), "outputs without scales");
            return stats;
        }
        let nsamples = scales.len();
        assert_eq!(
            batch_codes.len(),
            nsamples * self.orig_rows,
            "need one whole input vector per batched sample"
        );
        assert_eq!(
            outs.len(),
            nsamples * self.orig_cols,
            "need one whole output vector per batched sample"
        );
        for sample in batch_codes.chunks_exact(self.orig_rows) {
            self.validate_input_codes(sample);
        }
        let m = self.config.fragment_size;
        let dim = self.config.crossbar_dim;
        let cpw = self.config.cells_per_weight();
        let cell_bits = self.config.cell.bits();
        let ncols = self.col_index.len();
        let cell_cols = ncols * cpw;
        let fast = self.integer_matmul_path();
        outs.fill(0.0);

        for tile_lo in (0..nsamples).step_by(MATMUL_TILE) {
            let tile = tile_lo..(tile_lo + MATMUL_TILE).min(nsamples);
            let t = tile.len();
            scratch.accs.clear();
            scratch.accs.resize(t * ncols, 0);

            for frag in 0..self.fragments_per_col {
                let lo = frag * m;
                let hi = ((frag + 1) * m).min(self.row_index.len());
                let frag_rows = hi - lo;

                // Gather the tile's fragment codes (sample-major) and each
                // sample's effective input cycles, accounting stats exactly
                // as the per-sample path would.
                scratch.tile_codes.clear();
                scratch.tile_eic.clear();
                let mut max_planes = 0u32;
                for s in tile.clone() {
                    let codes = &batch_codes[s * self.orig_rows..(s + 1) * self.orig_rows];
                    let start = scratch.tile_codes.len();
                    scratch
                        .tile_codes
                        .extend((lo..hi).map(|i| codes[self.row_index[i]]));
                    let n_planes = if self.config.zero_skipping {
                        fragment_eic(&scratch.tile_codes[start..])
                    } else {
                        self.config.input_bits
                    };
                    scratch.tile_eic.push(n_planes);
                    max_planes = max_planes.max(n_planes);
                    stats.fragments_total += 1;
                    stats.cycles_without_skip += u64::from(self.config.input_bits);
                    stats.cycles += u64::from(n_planes);
                    if n_planes == 0 {
                        stats.fragments_skipped += 1;
                    }
                }
                if max_planes == 0 {
                    continue;
                }
                let words = pack_tile_bit_planes(
                    &scratch.tile_codes,
                    t,
                    max_planes,
                    &mut scratch.tile_planes,
                );
                let stride = max_planes as usize * words;
                let (xr, row_lo) = (lo / dim, lo % dim);

                if fast {
                    let MvmScratch {
                        tile_eic,
                        tile_planes,
                        icell,
                        icurr,
                        cell_acc,
                        accs,
                        ..
                    } = scratch;
                    // Integer window, once per (fragment, tile).
                    icell.clear();
                    icell.resize(frag_rows * cell_cols, 0);
                    for r in 0..frag_rows {
                        let row = &mut icell[r * cell_cols..(r + 1) * cell_cols];
                        for xc in 0..self.xb_cols {
                            let col_lo = xc * dim;
                            if col_lo >= cell_cols {
                                break;
                            }
                            let col_hi = (col_lo + dim).min(cell_cols);
                            self.crossbars[xr * self.xb_cols + xc]
                                .integral_row_into(row_lo + r, &mut row[col_lo..col_hi]);
                        }
                    }
                    for (si, &eic) in tile_eic.iter().enumerate() {
                        if eic == 0 {
                            continue;
                        }
                        cell_acc.clear();
                        cell_acc.resize(cell_cols, 0);
                        let planes = &tile_planes[si * stride..][..eic as usize * words];
                        for (cycle, plane) in planes.chunks_exact(words).enumerate() {
                            if plane_is_zero(plane) {
                                continue;
                            }
                            icurr.clear();
                            icurr.resize(cell_cols, 0);
                            for_each_set_bit(plane, |i| {
                                if i < frag_rows {
                                    add_row_u16(icurr, &icell[i * cell_cols..(i + 1) * cell_cols]);
                                }
                            });
                            for (acc, &c) in cell_acc.iter_mut().zip(icurr.iter()) {
                                *acc += u64::from(c) << cycle;
                            }
                        }
                        // Lossless conversion is the identity, so the
                        // conversions are counted arithmetically: every
                        // column converts every slice each shift cycle.
                        stats.adc_conversions += u64::from(eic) * (cell_cols as u64);
                        let sample_accs = &mut accs[si * ncols..][..ncols];
                        for (ci, acc) in sample_accs.iter_mut().enumerate() {
                            let mut frag_total = 0u64;
                            for &s in &cell_acc[ci * cpw..(ci + 1) * cpw] {
                                frag_total = (frag_total << cell_bits) + s;
                            }
                            let positive = self.signs[ci * self.fragments_per_col + frag];
                            *acc += if positive {
                                frag_total as i64
                            } else {
                                -(frag_total as i64)
                            };
                        }
                    }
                } else {
                    let MvmScratch {
                        tile_eic,
                        tile_planes,
                        cell_vals,
                        currents,
                        slice_acc,
                        accs,
                        ..
                    } = scratch;
                    // f64 window, once per (fragment, tile).
                    cell_vals.clear();
                    cell_vals.resize(frag_rows * cell_cols, 0.0);
                    for r in 0..frag_rows {
                        let row = &mut cell_vals[r * cell_cols..(r + 1) * cell_cols];
                        for xc in 0..self.xb_cols {
                            let col_lo = xc * dim;
                            if col_lo >= cell_cols {
                                break;
                            }
                            let col_hi = (col_lo + dim).min(cell_cols);
                            self.crossbars[xr * self.xb_cols + xc]
                                .dequant_row_into(row_lo + r, &mut row[col_lo..col_hi]);
                        }
                    }
                    for (si, &eic) in tile_eic.iter().enumerate() {
                        if eic == 0 {
                            continue;
                        }
                        let n_planes = eic as usize;
                        // Currents accumulate active rows in ascending
                        // order, matching the per-sample summation order
                        // bitwise.
                        currents.clear();
                        currents.resize(n_planes * cell_cols, 0.0);
                        let planes = &tile_planes[si * stride..][..n_planes * words];
                        for (cycle, plane) in planes.chunks_exact(words).enumerate() {
                            let row = &mut currents[cycle * cell_cols..(cycle + 1) * cell_cols];
                            for_each_set_bit(plane, |i| {
                                if i < frag_rows {
                                    add_row_f64(
                                        row,
                                        &cell_vals[i * cell_cols..(i + 1) * cell_cols],
                                    );
                                }
                            });
                        }
                        let sample_accs = &mut accs[si * ncols..][..ncols];
                        for (ci, acc) in sample_accs.iter_mut().enumerate() {
                            slice_acc.clear();
                            slice_acc.resize(cpw, 0);
                            for cycle in 0..n_planes {
                                let cur = &currents[cycle * cell_cols..];
                                for (k, acc_k) in slice_acc.iter_mut().enumerate() {
                                    let code =
                                        self.adc.convert(cur[ci * cpw + k], &self.config.cell);
                                    stats.adc_conversions += 1;
                                    *acc_k += u64::from(code) << cycle;
                                }
                            }
                            let mut frag_total = 0u64;
                            for &s in slice_acc.iter() {
                                frag_total = (frag_total << cell_bits) + s;
                            }
                            let positive = self.signs[ci * self.fragments_per_col + frag];
                            *acc += if positive {
                                frag_total as i64
                            } else {
                                -(frag_total as i64)
                            };
                        }
                    }
                }
            }

            for (si, s) in tile.enumerate() {
                let out = &mut outs[s * self.orig_cols..][..self.orig_cols];
                for (ci, &c) in self.col_index.iter().enumerate() {
                    out[c] = scratch.accs[si * ncols + ci] as f32 * self.step * scales[s];
                }
            }
        }
        stats
    }

    /// Validates the whole input vector in one pass (length + range), so
    /// the per-fragment gather loops stay assert-free.
    fn validate_input_codes(&self, input_codes: &[u32]) {
        assert_eq!(
            input_codes.len(),
            self.orig_rows,
            "need one input code per original row"
        );
        let limit = 1u64 << self.config.input_bits;
        assert!(
            self.row_index
                .iter()
                .all(|&r| u64::from(input_codes[r]) < limit),
            "input code exceeds {} bits",
            self.config.input_bits
        );
    }

    /// The packed bit-plane kernel behind every public matvec entry point.
    ///
    /// Per fragment it gathers codes, computes the effective input cycles,
    /// packs the driven bit planes into `u64` masks and reads *raw* column
    /// currents plane-major into the scratch — then perturbs and
    /// ADC-converts them in the legacy column → cycle → slice order, so
    /// both the float summation order and the noise draw order match
    /// [`matvec_reference`](Self::matvec_reference) bitwise. With a warm
    /// scratch the kernel allocates nothing.
    fn matvec_packed(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        mut perturb: impl FnMut(f64) -> f64,
        scratch: &mut MvmScratch,
        out: &mut [f32],
    ) -> MvmStats {
        self.validate_input_codes(input_codes);
        assert_eq!(
            out.len(),
            self.orig_cols,
            "need one output slot per original column"
        );
        let m = self.config.fragment_size;
        let dim = self.config.crossbar_dim;
        let cpw = self.config.cells_per_weight();
        let cell_bits = self.config.cell.bits();
        let cell_cols = self.col_index.len() * cpw;
        let mut stats = MvmStats::default();
        out.fill(0.0);
        scratch.accs.clear();
        scratch.accs.resize(self.col_index.len(), 0);

        for frag in 0..self.fragments_per_col {
            let lo = frag * m;
            let hi = ((frag + 1) * m).min(self.row_index.len());
            scratch.codes.clear();
            scratch
                .codes
                .extend((lo..hi).map(|i| input_codes[self.row_index[i]]));
            stats.fragments_total += 1;
            stats.cycles_without_skip += u64::from(self.config.input_bits);

            // Planes driven this fragment (LSB first):
            // `ShiftRegisterBank::drain` yields exactly the fragment's EIC
            // planes, so the packed path uses the EIC directly.
            let n_planes = if self.config.zero_skipping {
                fragment_eic(&scratch.codes)
            } else {
                self.config.input_bits
            };
            stats.cycles += u64::from(n_planes);
            if n_planes == 0 {
                stats.fragments_skipped += 1;
                continue;
            }
            let words = pack_bit_planes(&scratch.codes, n_planes, &mut scratch.planes);
            let (xr, row_lo) = (lo / dim, lo % dim);
            let frag_rows = scratch.codes.len();

            // Dequantized cell values of the fragment window, cached once
            // so the per-plane reads below are pure adds.
            scratch.cell_vals.clear();
            scratch.cell_vals.resize(frag_rows * cell_cols, 0.0);
            for r in 0..frag_rows {
                let row = &mut scratch.cell_vals[r * cell_cols..(r + 1) * cell_cols];
                for xc in 0..self.xb_cols {
                    let col_lo = xc * dim;
                    if col_lo >= cell_cols {
                        break;
                    }
                    let col_hi = (col_lo + dim).min(cell_cols);
                    self.crossbars[xr * self.xb_cols + xc]
                        .dequant_row_into(row_lo + r, &mut row[col_lo..col_hi]);
                }
            }

            // Raw (pre-perturbation) currents for every plane × cell
            // column: active rows accumulate in ascending order, matching
            // the legacy per-column summation order bitwise.
            scratch.currents.clear();
            scratch.currents.resize(n_planes as usize * cell_cols, 0.0);
            let (currents, cell_vals) = (&mut scratch.currents, &scratch.cell_vals);
            for (cycle, plane) in scratch.planes.chunks_exact(words).enumerate() {
                let row = &mut currents[cycle * cell_cols..(cycle + 1) * cell_cols];
                forms_reram::for_each_set_bit(plane, |i| {
                    if i >= frag_rows {
                        return;
                    }
                    let vals = &cell_vals[i * cell_cols..(i + 1) * cell_cols];
                    for (acc, &v) in row.iter_mut().zip(vals) {
                        *acc += v;
                    }
                });
            }

            // Perturbation + ADC + shift-&-add in the legacy loop order
            // (column, then cycle, then slice).
            for (ci, acc) in scratch.accs.iter_mut().enumerate() {
                scratch.slice_acc.clear();
                scratch.slice_acc.resize(cpw, 0);
                for cycle in 0..n_planes as usize {
                    let currents = &scratch.currents[cycle * cell_cols..];
                    for (k, acc_k) in scratch.slice_acc.iter_mut().enumerate() {
                        let current = perturb(currents[ci * cpw + k]);
                        let code = self.adc.convert(current, &self.config.cell);
                        stats.adc_conversions += 1;
                        *acc_k += u64::from(code) << cycle;
                    }
                }
                let mut frag_total = 0u64;
                for &s in &scratch.slice_acc {
                    frag_total = (frag_total << cell_bits) + s;
                }
                // The sign indicator steers the accumulator add/subtract.
                let positive = self.signs[ci * self.fragments_per_col + frag];
                *acc += if positive {
                    frag_total as i64
                } else {
                    -(frag_total as i64)
                };
            }
        }
        for (ci, &c) in self.col_index.iter().enumerate() {
            out[c] = scratch.accs[ci] as f32 * self.step * input_scale;
        }
        stats
    }

    fn matvec_impl(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        mut perturb: impl FnMut(f64) -> f64,
    ) -> (Vec<f32>, MvmStats) {
        self.validate_input_codes(input_codes);
        let m = self.config.fragment_size;
        let dim = self.config.crossbar_dim;
        let cpw = self.config.cells_per_weight();
        let cell_bits = self.config.cell.bits();
        let mut stats = MvmStats::default();
        let mut out = vec![0.0f32; self.orig_cols];
        let mut accs = vec![0i64; self.col_index.len()];

        // Fragment-major order mirrors the hardware: one shift-register
        // bank feeds every column of the sub-array simultaneously, so input
        // cycles are paid once per fragment, not once per column.
        for frag in 0..self.fragments_per_col {
            let lo = frag * m;
            let hi = ((frag + 1) * m).min(self.row_index.len());
            let codes: Vec<u32> = (lo..hi).map(|i| input_codes[self.row_index[i]]).collect();
            stats.fragments_total += 1;
            stats.cycles_without_skip += u64::from(self.config.input_bits);

            // Bit planes driven this fragment (LSB first).
            let planes: Vec<Vec<bool>> = if self.config.zero_skipping {
                ShiftRegisterBank::load(&codes).drain()
            } else {
                (0..self.config.input_bits)
                    .map(|cycle| codes.iter().map(|&c| (c >> cycle) & 1 == 1).collect())
                    .collect()
            };
            stats.cycles += planes.len() as u64;
            if planes.is_empty() {
                stats.fragments_skipped += 1;
                continue;
            }
            let drives: Vec<Vec<f64>> = planes
                .iter()
                .map(|bits| bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
                .collect();
            let (xr, row_lo) = (lo / dim, lo % dim);
            let window = row_lo..row_lo + codes.len();

            for (ci, acc) in accs.iter_mut().enumerate() {
                // Per-slice accumulation over bit planes, then shift-&-add
                // across slices (MSB slice first).
                let mut slice_acc = vec![0u64; cpw];
                for (cycle, drive) in drives.iter().enumerate() {
                    for (k, acc_k) in slice_acc.iter_mut().enumerate() {
                        let cell_col = ci * cpw + k;
                        let (xc, col_in_xb) = (cell_col / dim, cell_col % dim);
                        let current =
                            perturb(self.crossbars[xr * self.xb_cols + xc].column_current(
                                col_in_xb,
                                drive,
                                window.clone(),
                            ));
                        let code = self.adc.convert(current, &self.config.cell);
                        stats.adc_conversions += 1;
                        *acc_k += u64::from(code) << cycle;
                    }
                }
                let mut frag_total = 0u64;
                for &s in &slice_acc {
                    frag_total = (frag_total << cell_bits) + s;
                }
                // The sign indicator steers the accumulator add/subtract.
                let positive = self.signs[ci * self.fragments_per_col + frag];
                *acc += if positive {
                    frag_total as i64
                } else {
                    -(frag_total as i64)
                };
            }
        }
        for (ci, &c) in self.col_index.iter().enumerate() {
            out[c] = accs[ci] as f32 * self.step * input_scale;
        }
        (out, stats)
    }
}

impl CrossbarEngine for MappedLayer {
    type Config = MappingConfig;
    type Stats = MvmStats;
    type Scratch = MvmScratch;

    fn map_matrix(matrix: &Tensor, config: &MappingConfig) -> Result<Self, ExecError> {
        MappedLayer::map(matrix, *config)
    }

    fn output_len(&self) -> usize {
        self.orig_cols
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut MvmScratch,
        out: &mut [f32],
    ) -> MvmStats {
        MappedLayer::matvec_into(self, input_codes, input_scale, scratch, out)
    }

    fn matmul_into(
        &self,
        batch_codes: &[u32],
        scales: &[f32],
        scratch: &mut MvmScratch,
        outs: &mut [f32],
    ) -> MvmStats {
        MappedLayer::matmul_into(self, batch_codes, scales, scratch, outs)
    }

    fn crossbar_count(&self) -> usize {
        MappedLayer::crossbar_count(self)
    }

    fn mean_input_cycles(stats: &MvmStats) -> Option<f64> {
        (stats.fragments_total > 0)
            .then(|| (stats.cycles as f64 / stats.fragments_total as f64).max(1.0))
    }

    fn max_input_cycles(config: &MappingConfig) -> f64 {
        f64::from(config.input_bits)
    }

    fn precision_of(config: &MappingConfig) -> forms_exec::LayerPrecision {
        forms_exec::LayerPrecision::new(config.weight_bits, config.input_bits)
    }

    fn with_precision(
        config: &MappingConfig,
        precision: forms_exec::LayerPrecision,
    ) -> MappingConfig {
        MappingConfig {
            weight_bits: precision.weight_bits,
            input_bits: precision.input_bits,
            ..*config
        }
    }

    fn health(&self) -> EngineHealth {
        let dim = self.config.crossbar_dim as u64;
        EngineHealth {
            faulted_cells: self.faulted_cells,
            drifted_cells: self.drifted_cells,
            total_cells: self.crossbars.len() as u64 * dim * dim,
        }
    }

    fn output_ceiling(&self) -> Option<f64> {
        Some(self.ceiling)
    }
}

impl FaultableEngine for MappedLayer {
    fn inject_faults(&mut self, campaign: &FaultCampaign, salt: u64) -> FaultReport {
        let mut total = FaultReport::default();
        for (i, xbar) in self.crossbars.iter_mut().enumerate() {
            // Decorrelate crossbars within the layer; the caller's salt
            // already decorrelates layers and replicas.
            let xb_salt = salt ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
            total.merge(&campaign.apply(xbar, xb_salt));
        }
        self.faulted_cells += total.stuck() as u64;
        self.drifted_cells += total.drifted as u64;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_tensor::QuantizedTensor;

    /// A small polarized matrix: fragments of 4 rows, alternating sign per
    /// column fragment.
    fn polarized_matrix(rows: usize, cols: usize, m: usize) -> Tensor {
        Tensor::from_fn(&[rows, cols], |i| {
            let (r, c) = (i / cols, i % cols);
            let frag = r / m;
            let sign = if (frag + c).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            sign * ((i % 7) as f32 + 1.0) / 8.0
        })
    }

    fn small_config(m: usize) -> MappingConfig {
        MappingConfig {
            crossbar_dim: 16,
            fragment_size: m,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 8,
            zero_skipping: true,
        }
    }

    #[test]
    fn rejects_unpolarized_matrix() {
        let w = Tensor::from_vec(vec![1.0, -1.0, 2.0, 1.0], &[4, 1]);
        let err = MappedLayer::map(&w, small_config(4)).unwrap_err();
        assert!(matches!(err, ExecError::NotPolarized { violations: 1 }));
    }

    #[test]
    fn rejects_all_zero_matrix() {
        let w = Tensor::zeros(&[4, 2]);
        assert_eq!(
            MappedLayer::map(&w, small_config(4)).unwrap_err(),
            ExecError::AllZero
        );
    }

    #[test]
    fn dequantized_matrix_round_trips_within_step() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let back = mapped.dequantized_matrix();
        assert!(
            w.max_abs_diff(&back) <= mapped.step() / 2.0 + 1e-6,
            "round-trip error {} vs step {}",
            w.max_abs_diff(&back),
            mapped.step()
        );
    }

    #[test]
    fn matvec_matches_digital_reference_exactly() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[16], |i| (i as f32 * 0.13).fract());
        let q = QuantizedTensor::quantize(&x, 8);
        let (got, _) = mapped.matvec(q.codes(), q.spec().scale());
        // Digital reference: dequantized weights × dequantized inputs.
        let reference = mapped
            .dequantized_matrix()
            .transpose()
            .matvec(q.dequantize().data());
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 1e-3, "analog {g} vs digital {r}");
        }
    }

    #[test]
    fn zero_skipping_does_not_change_results() {
        let w = polarized_matrix(16, 4, 4);
        let mut cfg = small_config(4);
        let x = Tensor::from_fn(&[16], |i| if i % 3 == 0 { 0.0 } else { 0.01 * i as f32 });
        let q = QuantizedTensor::quantize(&x, 8);

        cfg.zero_skipping = true;
        let skipping = MappedLayer::map(&w, cfg).unwrap();
        let (with_skip, s1) = skipping.matvec(q.codes(), q.spec().scale());

        cfg.zero_skipping = false;
        let plain = MappedLayer::map(&w, cfg).unwrap();
        let (without, s2) = plain.matvec(q.codes(), q.spec().scale());

        assert_eq!(with_skip, without);
        assert!(s1.cycles < s2.cycles, "no cycles saved: {s1:?} vs {s2:?}");
        assert_eq!(s2.cycles, s2.cycles_without_skip);
    }

    #[test]
    fn pruned_rows_and_cols_are_compacted() {
        // Zero out half the rows and one column.
        let mut w = polarized_matrix(16, 4, 4);
        let cols = 4;
        for r in 8..16 {
            for c in 0..cols {
                w.data_mut()[r * cols + c] = 0.0;
            }
        }
        for r in 0..16 {
            w.data_mut()[r * cols + 2] = 0.0;
        }
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        // 8 surviving rows × 3 surviving cols × 4 cells = 12 cell columns →
        // one 16×16 crossbar.
        assert_eq!(mapped.crossbar_count(), 1);
        // Output for the pruned column must be exactly zero.
        let q_codes = vec![5u32; 16];
        let (out, _) = mapped.matvec(&q_codes, 1.0);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn all_zero_input_fragments_are_skipped() {
        let w = polarized_matrix(8, 2, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let codes = vec![0u32; 8];
        let (out, stats) = mapped.matvec(&codes, 1.0);
        assert!(out.iter().all(|&v| v == 0.0));
        assert_eq!(stats.fragments_skipped, stats.fragments_total);
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn sign_bits_count_matches_fragments() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        assert_eq!(mapped.fragments_per_col(), 4);
        assert_eq!(mapped.sign_bits(), 16);
    }

    #[test]
    fn stats_cycle_accounting_is_consistent() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let x = Tensor::from_fn(&[16], |i| 0.002 * (i as f32 + 1.0));
        let q = QuantizedTensor::quantize(&x, 8);
        let (_, stats) = mapped.matvec(q.codes(), q.spec().scale());
        assert!(stats.cycles <= stats.cycles_without_skip);
        assert!(stats.cycles_saved_fraction() >= 0.0);
        // Conversions = cycles × slices × active columns (every column
        // converts every slice each shift cycle).
        assert_eq!(
            stats.adc_conversions,
            stats.cycles * mapped.config().cells_per_weight() as u64 * 4
        );
    }

    #[test]
    fn zero_skipping_saves_energy_not_just_cycles() {
        let w = polarized_matrix(16, 4, 4);
        let mut cfg = small_config(4);
        // Fragment 0 holds the large values; fragments 1–3 are tiny and
        // skip most of their bits.
        let x = Tensor::from_fn(&[16], |i| if i < 4 { 0.2 } else { 0.001 });
        let q = QuantizedTensor::quantize(&x, 8);
        cfg.zero_skipping = true;
        let (_, s_on) = MappedLayer::map(&w, cfg)
            .unwrap()
            .matvec(q.codes(), q.spec().scale());
        cfg.zero_skipping = false;
        let (_, s_off) = MappedLayer::map(&w, cfg)
            .unwrap()
            .matvec(q.codes(), q.spec().scale());
        let mcu = forms_hwmodel::McuConfig::forms(4);
        assert!(
            s_on.energy_pj(&cfg, &mcu) < s_off.energy_pj(&cfg, &mcu),
            "zero-skipping must reduce dynamic energy"
        );
    }

    #[test]
    fn noiseless_noise_model_is_exact() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let codes = vec![9u32; 16];
        let (clean, _) = mapped.matvec(&codes, 1.0);
        let mut rng = forms_rng::StdRng::seed_from_u64(0);
        let (noisy, _) =
            mapped.matvec_noisy(&codes, 1.0, &forms_reram::CurrentNoise::none(), &mut rng);
        assert_eq!(clean, noisy);
    }

    #[test]
    fn read_noise_perturbs_results() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let codes = vec![9u32; 16];
        let (clean, _) = mapped.matvec(&codes, 1.0);
        let mut rng = forms_rng::StdRng::seed_from_u64(1);
        let noise = forms_reram::CurrentNoise::new(1.0, 0.0);
        let (noisy, _) = mapped.matvec_noisy(&codes, 1.0, &noise, &mut rng);
        assert_ne!(clean, noisy, "strong noise must move some outputs");
    }

    #[test]
    fn packed_kernel_is_bitwise_identical_to_reference() {
        // The tentpole invariant: packed == legacy bit-for-bit, zero-skip
        // on and off, over matrices that exercise pruning, partial tail
        // fragments and multiple crossbar columns.
        for &(rows, cols, m) in &[(16usize, 4usize, 4usize), (10, 3, 4), (40, 5, 8)] {
            let mut w = polarized_matrix(rows, cols, m);
            // Prune one whole fragment of rows (keeps the remaining rows
            // fragment-aligned) and one column to exercise compaction.
            for r in m..(2 * m).min(rows) {
                for c in 0..cols {
                    w.data_mut()[r * cols + c] = 0.0;
                }
            }
            for r in 0..rows {
                w.data_mut()[r * cols + 1] = 0.0;
            }
            for zero_skipping in [true, false] {
                let cfg = MappingConfig {
                    fragment_size: m,
                    zero_skipping,
                    ..small_config(m)
                };
                let mapped = MappedLayer::map(&w, cfg).unwrap();
                for seed in 0..4u64 {
                    let codes: Vec<u32> = (0..rows)
                        .map(|i| ((i as u64 * 37 + seed * 101) % 251) as u32)
                        .collect();
                    let (reference, ref_stats) = mapped.matvec_reference(&codes, 0.031);
                    let (packed, packed_stats) = mapped.matvec(&codes, 0.031);
                    assert_eq!(reference, packed, "zero_skipping={zero_skipping}");
                    assert_eq!(ref_stats, packed_stats);
                }
            }
        }
    }

    #[test]
    fn packed_scratch_is_reusable_across_layers_and_inputs() {
        // One warm scratch threaded through MVMs of different shapes must
        // keep producing bitwise-reference results.
        let mut scratch = MvmScratch::default();
        for &(rows, cols, m) in &[(40usize, 5usize, 8usize), (16, 4, 4), (8, 2, 4)] {
            let w = polarized_matrix(rows, cols, m);
            let cfg = MappingConfig {
                fragment_size: m,
                ..small_config(m)
            };
            let mapped = MappedLayer::map(&w, cfg).unwrap();
            let mut out = vec![0.0f32; cols];
            for seed in 0..3u32 {
                let codes: Vec<u32> = (0..rows).map(|i| (i as u32 * 13 + seed) % 256).collect();
                let stats = mapped.matvec_into(&codes, 1.0, &mut scratch, &mut out);
                let (reference, ref_stats) = mapped.matvec_reference(&codes, 1.0);
                assert_eq!(reference, out);
                assert_eq!(ref_stats, stats);
            }
        }
    }

    #[test]
    fn noisy_packed_kernel_matches_reference_draw_for_draw() {
        // The packed kernel must consume the noise RNG in exactly the
        // legacy order, so the same seed gives bitwise equal noisy outputs.
        let w = polarized_matrix(16, 4, 4);
        let noise = forms_reram::CurrentNoise::new(0.3, 0.1);
        for zero_skipping in [true, false] {
            let cfg = MappingConfig {
                zero_skipping,
                ..small_config(4)
            };
            let mapped = MappedLayer::map(&w, cfg).unwrap();
            let codes: Vec<u32> = (0..16).map(|i| (i * 11) as u32 % 97).collect();
            let mut rng_a = forms_rng::StdRng::seed_from_u64(42);
            let mut rng_b = forms_rng::StdRng::seed_from_u64(42);
            let (reference, rs) = mapped.matvec_noisy_reference(&codes, 0.5, &noise, &mut rng_a);
            let (packed, ps) = mapped.matvec_noisy(&codes, 0.5, &noise, &mut rng_b);
            assert_eq!(reference, packed, "zero_skipping={zero_skipping}");
            assert_eq!(rs, ps);
        }
    }

    #[test]
    fn invalid_input_codes_are_rejected_up_front() {
        let w = polarized_matrix(8, 2, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let codes = vec![256u32; 8]; // exceeds the 8-bit input width
        let result = std::panic::catch_unwind(|| mapped.matvec(&codes, 1.0));
        assert!(result.is_err(), "out-of-range codes must panic");
    }

    #[test]
    fn large_fragment_spanning_multiple_crossbars() {
        // 40 rows at crossbar dim 16 → 3 crossbar rows.
        let w = polarized_matrix(40, 2, 8);
        let cfg = MappingConfig {
            fragment_size: 8,
            ..small_config(8)
        };
        let mapped = MappedLayer::map(&w, cfg).unwrap();
        assert!(mapped.crossbar_count() >= 3);
        let x = Tensor::from_fn(&[40], |i| (i as f32 * 0.07).fract());
        let q = QuantizedTensor::quantize(&x, 8);
        let (got, _) = mapped.matvec(q.codes(), q.spec().scale());
        let reference = mapped
            .dequantized_matrix()
            .transpose()
            .matvec(q.dequantize().data());
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 1e-3, "analog {g} vs digital {r}");
        }
    }

    #[test]
    fn clean_outputs_stay_under_the_ceiling() {
        let w = polarized_matrix(16, 4, 4);
        let mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let ceiling = CrossbarEngine::output_ceiling(&mapped).unwrap();
        assert!(ceiling > 0.0);
        // Worst-case inputs: every code at full scale.
        let codes = vec![255u32; 16];
        let (out, _) = mapped.matvec(&codes, 1.0);
        for v in out {
            assert!(
                f64::from(v.abs()) <= ceiling * (1.0 + 1e-9),
                "clean output {v} exceeds ceiling {ceiling}"
            );
        }
    }

    #[test]
    fn injected_faults_update_health_and_packed_path() {
        let w = polarized_matrix(16, 4, 4);
        let mut mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let pristine = CrossbarEngine::health(&mapped);
        assert_eq!(pristine.faulted_cells, 0);
        assert_eq!(pristine.drifted_cells, 0);
        assert_eq!(pristine.fault_density(), 0.0);

        let campaign = FaultCampaign::stuck_at(7, 0.2, 0.1);
        let report = mapped.inject_faults(&campaign, 99);
        assert!(report.stuck() > 0, "20%+10% over 1024 cells must hit");

        let health = CrossbarEngine::health(&mapped);
        assert_eq!(health.faulted_cells, report.stuck() as u64);
        assert_eq!(health.total_cells, mapped.crossbar_count() as u64 * 16 * 16);
        assert!(health.fault_density() > 0.0);

        // The faulted state must flow through the packed hot path exactly
        // as through the reference path.
        let codes: Vec<u32> = (0..16).map(|i| (i * 13) as u32 % 251).collect();
        let (packed, _) = mapped.matvec(&codes, 0.5);
        let (reference, _) = mapped.matvec_reference(&codes, 0.5);
        assert_eq!(packed, reference);
    }

    /// Per-sample oracle: N× `matvec_into` through one warm scratch.
    fn matmul_oracle(
        mapped: &MappedLayer,
        batch_codes: &[u32],
        scales: &[f32],
    ) -> (Vec<f32>, MvmStats) {
        let rows = mapped.orig_rows;
        let mut scratch = MvmScratch::default();
        let mut outs = vec![0.0f32; scales.len() * mapped.orig_cols];
        let mut stats = MvmStats::default();
        for ((codes, out), &scale) in batch_codes
            .chunks_exact(rows)
            .zip(outs.chunks_exact_mut(mapped.orig_cols))
            .zip(scales)
        {
            stats.merge(mapped.matvec_into(codes, scale, &mut scratch, out));
        }
        (outs, stats)
    }

    fn batch_codes_for(mapped: &MappedLayer, samples: usize, seed: u64) -> (Vec<u32>, Vec<f32>) {
        let rows = mapped.orig_rows;
        let codes: Vec<u32> = (0..samples * rows)
            .map(|i| ((i as u64 * 37 + seed * 101) % 251) as u32)
            .collect();
        let scales: Vec<f32> = (0..samples).map(|s| 0.01 + 0.003 * s as f32).collect();
        (codes, scales)
    }

    #[test]
    fn batched_matmul_is_bitwise_identical_to_per_sample_matvec() {
        // The batch-kernel invariant, over matrices that exercise pruning,
        // partial tail fragments and multiple crossbar columns, with
        // zero-skipping on and off, and over batch sizes that cover the
        // empty batch, a single sample and a ragged tail past one tile.
        for &(rows, cols, m) in &[(16usize, 4usize, 4usize), (10, 3, 4), (40, 5, 8)] {
            let mut w = polarized_matrix(rows, cols, m);
            for r in m..(2 * m).min(rows) {
                for c in 0..cols {
                    w.data_mut()[r * cols + c] = 0.0;
                }
            }
            for r in 0..rows {
                w.data_mut()[r * cols + 1] = 0.0;
            }
            for zero_skipping in [true, false] {
                let cfg = MappingConfig {
                    fragment_size: m,
                    zero_skipping,
                    ..small_config(m)
                };
                let mapped = MappedLayer::map(&w, cfg).unwrap();
                assert!(mapped.integer_matmul_path(), "pristine map must be fast");
                let mut scratch = MvmScratch::default();
                for samples in [0usize, 1, 5, MATMUL_TILE + 1] {
                    let (codes, scales) = batch_codes_for(&mapped, samples, 7);
                    let mut outs = vec![0.0f32; samples * cols];
                    let stats = mapped.matmul_into(&codes, &scales, &mut scratch, &mut outs);
                    let (want, want_stats) = matmul_oracle(&mapped, &codes, &scales);
                    assert_eq!(outs, want, "samples={samples} skip={zero_skipping}");
                    assert_eq!(stats, want_stats, "samples={samples} skip={zero_skipping}");
                }
            }
        }
    }

    #[test]
    fn batched_matmul_on_drifted_array_falls_back_bitwise() {
        // Knock one cell off the integer grid: the whole layer must fall
        // back to the f64 path and still match the per-sample oracle
        // bit-for-bit.
        let w = polarized_matrix(40, 5, 8);
        let cfg = MappingConfig {
            fragment_size: 8,
            ..small_config(8)
        };
        let mut mapped = MappedLayer::map(&w, cfg).unwrap();
        mapped.crossbars_mut()[0].conductances_mut()[3] += 7.31;
        mapped.crossbars_mut()[0].commit_writes();
        assert!(
            !mapped.integer_matmul_path(),
            "drift must disable fast path"
        );
        let mut scratch = MvmScratch::default();
        let (codes, scales) = batch_codes_for(&mapped, MATMUL_TILE + 3, 11);
        let mut outs = vec![0.0f32; scales.len() * 5];
        let stats = mapped.matmul_into(&codes, &scales, &mut scratch, &mut outs);
        let (want, want_stats) = matmul_oracle(&mapped, &codes, &scales);
        assert_eq!(outs, want);
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn batched_matmul_survives_post_map_fault_injection() {
        // Stuck-at faults rewrite cells to rail codes (still integral);
        // the fast path must read the *faulted* table, matching the
        // per-sample path on the same mutated layer.
        let w = polarized_matrix(16, 4, 4);
        let mut mapped = MappedLayer::map(&w, small_config(4)).unwrap();
        let report = mapped.inject_faults(&FaultCampaign::stuck_at(7, 0.2, 0.1), 99);
        assert!(report.stuck() > 0);
        let mut scratch = MvmScratch::default();
        let (codes, scales) = batch_codes_for(&mapped, 9, 3);
        let mut outs = vec![0.0f32; 9 * 4];
        let stats = mapped.matmul_into(&codes, &scales, &mut scratch, &mut outs);
        let (want, want_stats) = matmul_oracle(&mapped, &codes, &scales);
        assert_eq!(outs, want);
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn fault_injection_is_replayable_and_salt_sensitive() {
        let w = polarized_matrix(16, 4, 4);
        let campaign = FaultCampaign::stuck_at(11, 0.3, 0.0);
        let mut a = MappedLayer::map(&w, small_config(4)).unwrap();
        let mut b = MappedLayer::map(&w, small_config(4)).unwrap();
        let mut c = MappedLayer::map(&w, small_config(4)).unwrap();
        let ra = a.inject_faults(&campaign, 1);
        let rb = b.inject_faults(&campaign, 1);
        let rc = c.inject_faults(&campaign, 2);
        assert_eq!(ra, rb);
        assert_eq!(a.crossbars(), b.crossbars());
        assert!(
            a.crossbars() != c.crossbars() || ra != rc,
            "different salts must decorrelate"
        );
    }
}
