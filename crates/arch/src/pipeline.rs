//! The FORMS execution pipeline (paper Fig. 12).
//!
//! Like ISAAC, the pipeline has 22 stages — 26 for layers that need
//! pooling, where eDRAM is re-read in cycles 23–26 to compute the max of 4
//! values. The distinguishing FORMS feature is that the input-shift section
//! has *variable* occupancy: the skipping logic ends it after the
//! fragment's effective input cycles instead of always burning the full 16.
//!
//! The stage plan modelled here follows Fig. 12's structure:
//!
//! | cycles | section |
//! |--------|---------|
//! | 1–2    | eDRAM read (input registers) |
//! | 3–18   | input shift + in-situ MAC + ADC (variable, ≤ 16) |
//! | 19     | shift-&-add accumulation |
//! | 20     | activation function |
//! | 21–22  | eDRAM write |
//! | 23–26  | max-pooling read/compare/write (optional) |

/// One pipeline section with its residency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineStage {
    /// Section name.
    pub name: &'static str,
    /// Base residency in cycles (the input-shift section's residency is
    /// overridden per operation).
    pub cycles: u32,
    /// Whether this section's residency is the per-operation variable
    /// input-shift time.
    pub variable: bool,
}

/// An operation flowing through the pipeline: one fragment-group activation
/// with its input-shift cycle count (EIC under zero-skipping, the full bit
/// width without).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineOp {
    /// Input-shift cycles this operation needs (0 = fully skipped; it still
    /// occupies one cycle to be recognized).
    pub shift_cycles: u32,
}

/// The FORMS/ISAAC 22-stage (26 with pooling) pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Pipeline {
    stages: Vec<PipelineStage>,
    input_bits: u32,
}

impl Pipeline {
    /// Builds the pipeline for `input_bits`-bit activations, optionally
    /// with the 4 pooling stages.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits` is zero.
    pub fn new(input_bits: u32, with_pooling: bool) -> Self {
        assert!(input_bits > 0, "input bits must be positive");
        let mut stages = vec![
            PipelineStage {
                name: "eDRAM read",
                cycles: 2,
                variable: false,
            },
            PipelineStage {
                name: "input shift + MAC + ADC",
                cycles: input_bits,
                variable: true,
            },
            PipelineStage {
                name: "shift-&-add",
                cycles: 1,
                variable: false,
            },
            PipelineStage {
                name: "activation",
                cycles: 1,
                variable: false,
            },
            PipelineStage {
                name: "eDRAM write",
                cycles: 2,
                variable: false,
            },
        ];
        if with_pooling {
            stages.push(PipelineStage {
                name: "max-pool",
                cycles: 4,
                variable: false,
            });
        }
        Self { stages, input_bits }
    }

    /// The stage sections.
    pub fn stages(&self) -> &[PipelineStage] {
        &self.stages
    }

    /// Total cycle depth for a full (non-skipped) operation — 22 for the
    /// paper's 16-bit configuration, 26 with pooling.
    pub fn depth_cycles(&self) -> u32 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// Simulates a stream of operations through the pipeline (each section
    /// holds one operation at a time; an operation advances when the next
    /// section is free). Returns the total cycles until the last operation
    /// drains.
    pub fn run(&self, ops: &[PipelineOp]) -> u64 {
        if ops.is_empty() {
            return 0;
        }
        // end[g] = cycle when section g becomes free.
        let mut end = vec![0u64; self.stages.len()];
        let mut finish = 0u64;
        for op in ops {
            let mut t = 0u64; // cycle when this op may enter section 0
            for (g, stage) in self.stages.iter().enumerate() {
                let residency = if stage.variable {
                    // A fully skipped fragment still takes one cycle for the
                    // skip signal to be recognized.
                    op.shift_cycles.clamp(1, self.input_bits) as u64
                } else {
                    stage.cycles as u64
                };
                let start = t.max(end[g]);
                t = start + residency;
                end[g] = t;
            }
            finish = t;
        }
        finish
    }

    /// Steady-state cycles per operation for a uniform stream: the
    /// bottleneck section's residency.
    pub fn steady_state_cycles(&self, shift_cycles: u32) -> u64 {
        self.stages
            .iter()
            .map(|s| {
                if s.variable {
                    shift_cycles.clamp(1, self.input_bits) as u64
                } else {
                    s.cycles as u64
                }
            })
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_matches_paper_stage_counts() {
        assert_eq!(Pipeline::new(16, false).depth_cycles(), 22);
        assert_eq!(Pipeline::new(16, true).depth_cycles(), 26);
    }

    #[test]
    fn single_op_takes_full_depth() {
        let p = Pipeline::new(16, false);
        let t = p.run(&[PipelineOp { shift_cycles: 16 }]);
        assert_eq!(t, 22);
    }

    #[test]
    fn skipped_op_is_faster() {
        let p = Pipeline::new(16, false);
        let fast = p.run(&[PipelineOp { shift_cycles: 5 }]);
        assert_eq!(fast, 22 - 11);
    }

    #[test]
    fn steady_state_is_bottlenecked_by_shift_section() {
        let p = Pipeline::new(16, false);
        assert_eq!(p.steady_state_cycles(16), 16);
        assert_eq!(p.steady_state_cycles(10), 10);
        // Below the fixed sections' 2-cycle eDRAM, those dominate.
        assert_eq!(p.steady_state_cycles(1), 2);
    }

    #[test]
    fn pipelined_stream_amortizes_depth() {
        let p = Pipeline::new(16, false);
        let ops = vec![PipelineOp { shift_cycles: 16 }; 100];
        let total = p.run(&ops);
        // fill + (n−1) × bottleneck.
        assert_eq!(total, 22 + 99 * 16);
    }

    #[test]
    fn zero_skipping_speeds_up_streams() {
        let p = Pipeline::new(16, false);
        let full = p.run(&[PipelineOp { shift_cycles: 16 }; 50]);
        let skipped = p.run(&[PipelineOp { shift_cycles: 10 }; 50]);
        assert!(skipped < full);
        // Ratio approaches 16/10 for long streams.
        let ratio = full as f64 / skipped as f64;
        assert!(ratio > 1.45 && ratio < 1.65, "ratio {ratio}");
    }

    #[test]
    fn mixed_eic_stream_is_order_insensitive_in_total_work() {
        let p = Pipeline::new(16, false);
        let a = p.run(&[
            PipelineOp { shift_cycles: 16 },
            PipelineOp { shift_cycles: 2 },
            PipelineOp { shift_cycles: 9 },
        ]);
        let b = p.run(&[
            PipelineOp { shift_cycles: 9 },
            PipelineOp { shift_cycles: 16 },
            PipelineOp { shift_cycles: 2 },
        ]);
        // Totals differ only through pipeline scheduling, not work; both
        // are bounded by fill + Σ shift.
        for t in [a, b] {
            assert!((22..=22 + 27).contains(&t));
        }
    }

    #[test]
    fn empty_stream_takes_no_time() {
        assert_eq!(Pipeline::new(16, true).run(&[]), 0);
    }

    #[test]
    fn fully_skipped_op_still_costs_a_recognition_cycle() {
        let p = Pipeline::new(16, false);
        let t = p.run(&[PipelineOp { shift_cycles: 0 }]);
        assert_eq!(t, 7); // 2 + 1 + 1 + 1 + 2
    }
}
