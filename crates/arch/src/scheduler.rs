//! MCU-level fragment scheduling (paper Fig. 11).
//!
//! An MCU owns eight crossbars, each with its own ADC group; a layer's
//! fragment activations are distributed over the crossbars and processed in
//! parallel, each activation occupying its crossbar for its effective input
//! cycles. Because EIC varies per fragment (that is the whole point of
//! zero-skipping), naive round-robin assignment leaves crossbars idle while
//! one drains a long queue; the classic longest-processing-time heuristic
//! rebalances it. This module models both and reports makespan and
//! utilization.

use forms_hwmodel::McuConfig;

/// One fragment activation to schedule: the input cycles it occupies a
/// crossbar for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentJob {
    /// Effective input cycles (1..=input_bits).
    pub cycles: u32,
}

/// How jobs are distributed over the MCU's crossbars.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// Jobs dealt to crossbars in rotation (the hardware default: fragments
    /// arrive in address order).
    RoundRobin,
    /// Longest-processing-time-first greedy balancing (an idealized
    /// scheduler with global knowledge; the lower-bound comparator).
    LongestFirst,
}

/// Outcome of scheduling a job set on one MCU.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleReport {
    /// Cycles until the last crossbar finishes.
    pub makespan: u64,
    /// Total busy cycles per crossbar.
    pub busy: Vec<u64>,
    /// Mean crossbar utilization over the makespan, in `[0, 1]`.
    pub utilization: f64,
}

impl ScheduleReport {
    /// The theoretical minimum makespan (perfectly divisible work).
    pub fn lower_bound(&self) -> u64 {
        let total: u64 = self.busy.iter().sum();
        total.div_ceil(self.busy.len() as u64)
    }
}

/// Schedules fragment jobs on an MCU's crossbars under a policy.
///
/// # Panics
///
/// Panics if the MCU has no crossbars or any job has zero cycles.
pub fn schedule(mcu: &McuConfig, jobs: &[FragmentJob], policy: AssignmentPolicy) -> ScheduleReport {
    assert!(mcu.crossbars > 0, "MCU must have crossbars");
    assert!(
        jobs.iter().all(|j| j.cycles > 0),
        "jobs must take at least one cycle"
    );
    let n = mcu.crossbars;
    let mut busy = vec![0u64; n];
    match policy {
        AssignmentPolicy::RoundRobin => {
            for (i, job) in jobs.iter().enumerate() {
                busy[i % n] += u64::from(job.cycles);
            }
        }
        AssignmentPolicy::LongestFirst => {
            let mut sorted: Vec<u32> = jobs.iter().map(|j| j.cycles).collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for cycles in sorted {
                // Place on the least-loaded crossbar.
                let min = busy
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                busy[min] += u64::from(cycles);
            }
        }
    }
    let makespan = busy.iter().copied().max().unwrap_or(0);
    let utilization = if makespan == 0 {
        0.0
    } else {
        busy.iter().sum::<u64>() as f64 / (makespan * n as u64) as f64
    };
    ScheduleReport {
        makespan,
        busy,
        utilization,
    }
}

/// Builds the job set of one layer activation from per-fragment EICs.
pub fn jobs_from_eics(eics: &[u32]) -> Vec<FragmentJob> {
    eics.iter()
        .map(|&e| FragmentJob {
            cycles: e.max(1), // a fully skipped fragment still costs the
                              // skip-recognition cycle
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mcu() -> McuConfig {
        McuConfig::forms(8)
    }

    #[test]
    fn uniform_jobs_balance_perfectly_either_way() {
        let jobs = vec![FragmentJob { cycles: 10 }; 16];
        let rr = schedule(&mcu(), &jobs, AssignmentPolicy::RoundRobin);
        let lf = schedule(&mcu(), &jobs, AssignmentPolicy::LongestFirst);
        assert_eq!(rr.makespan, 20);
        assert_eq!(lf.makespan, 20);
        assert!((rr.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn longest_first_never_loses_to_round_robin() {
        // Skewed EICs: one long job per 8 short ones.
        let mut jobs = Vec::new();
        for i in 0..64 {
            jobs.push(FragmentJob {
                cycles: if i % 9 == 0 { 16 } else { 2 },
            });
        }
        let rr = schedule(&mcu(), &jobs, AssignmentPolicy::RoundRobin);
        let lf = schedule(&mcu(), &jobs, AssignmentPolicy::LongestFirst);
        assert!(lf.makespan <= rr.makespan);
        assert!(lf.makespan >= lf.lower_bound());
    }

    #[test]
    fn lpt_is_within_4_3_of_lower_bound() {
        // Graham's bound for LPT: makespan ≤ (4/3 − 1/3m) · OPT.
        let jobs: Vec<FragmentJob> = (1..=40)
            .map(|i| FragmentJob {
                cycles: (i * 7 % 16) as u32 + 1,
            })
            .collect();
        let lf = schedule(&mcu(), &jobs, AssignmentPolicy::LongestFirst);
        let bound = (lf.lower_bound() as f64 * 4.0 / 3.0).ceil() as u64 + 16;
        assert!(lf.makespan <= bound, "{} > {}", lf.makespan, bound);
    }

    #[test]
    fn empty_job_set_is_free() {
        let r = schedule(&mcu(), &[], AssignmentPolicy::RoundRobin);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.utilization, 0.0);
    }

    #[test]
    fn jobs_from_eics_charges_skip_recognition() {
        let jobs = jobs_from_eics(&[0, 3, 16]);
        assert_eq!(jobs[0].cycles, 1);
        assert_eq!(jobs[1].cycles, 3);
        assert_eq!(jobs[2].cycles, 16);
    }

    #[test]
    fn utilization_reflects_imbalance() {
        // One giant job starves the other crossbars.
        let mut jobs = vec![FragmentJob { cycles: 100 }];
        jobs.extend(vec![FragmentJob { cycles: 1 }; 7]);
        let r = schedule(&mcu(), &jobs, AssignmentPolicy::RoundRobin);
        assert_eq!(r.makespan, 100);
        assert!(r.utilization < 0.2);
    }
}
