//! Array programming through the VTEAM write model.
//!
//! The functional simulator programs cells by directly setting their
//! conductance; this module provides the physically grounded alternative —
//! write-verify pulse trains through [`VteamDevice`] — and reports the
//! programming cost (pulses, time, energy) that a real deployment would
//! pay when loading a model.

use crate::{CellSpec, Crossbar, VteamDevice, VteamParams};

/// Write-verify programmer for whole crossbars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrayProgrammer {
    params: VteamParams,
    /// Verify tolerance as a fraction of one conductance step.
    tolerance_steps: f64,
    /// Upper bound on pulses per cell before giving up.
    max_pulses: usize,
}

/// Cost of programming an array.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgrammingReport {
    /// Cells programmed.
    pub cells: usize,
    /// Total write pulses issued.
    pub pulses: usize,
    /// Cells that failed to verify within the pulse budget.
    pub failures: usize,
    /// Worst per-cell pulse count.
    pub worst_case_pulses: usize,
}

impl ProgrammingReport {
    /// Mean pulses per cell.
    pub fn mean_pulses(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.pulses as f64 / self.cells as f64
        }
    }

    /// Total programming time at `pulse_ns` nanoseconds per pulse
    /// (sequential worst case; real macros program column-parallel).
    pub fn total_time_ns(&self, pulse_ns: f64) -> f64 {
        self.pulses as f64 * pulse_ns
    }
}

impl ArrayProgrammer {
    /// Creates a programmer.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance_steps` is not positive or `max_pulses` is zero.
    pub fn new(params: VteamParams, tolerance_steps: f64, max_pulses: usize) -> Self {
        assert!(tolerance_steps > 0.0, "tolerance must be positive");
        assert!(max_pulses > 0, "pulse budget must be positive");
        Self {
            params,
            tolerance_steps,
            max_pulses,
        }
    }

    /// A practical default: verify to a quarter step within 10⁴ pulses.
    pub fn with_defaults() -> Self {
        Self::new(VteamParams::default(), 0.25, 10_000)
    }

    /// Programs every cell of `xbar` to the row-major `codes` through
    /// write-verify pulse trains, replacing the conductances with what the
    /// device dynamics actually reached.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows × cols` or a code overflows the cell.
    pub fn program(&self, xbar: &mut Crossbar, codes: &[u32]) -> ProgrammingReport {
        assert_eq!(
            codes.len(),
            xbar.rows() * xbar.cols(),
            "expected one code per cell"
        );
        let spec = *xbar.spec();
        let (g_min, g_max) = (spec.g_min(), spec.g_max());
        let tol = self.tolerance_steps * spec.g_step() / (g_max - g_min);
        let mut report = ProgrammingReport::default();
        for (g, &code) in xbar.conductances_mut().iter_mut().zip(codes) {
            let target_g = spec.conductance(code);
            let target_state = (target_g - g_min) / (g_max - g_min);
            let start_state = ((*g - g_min) / (g_max - g_min)).clamp(0.0, 1.0);
            let mut device = VteamDevice::new(self.params, start_state);
            let pulses = device.program_to(target_state, tol, self.max_pulses);
            report.cells += 1;
            report.pulses += pulses;
            report.worst_case_pulses = report.worst_case_pulses.max(pulses);
            if (device.state() - target_state).abs() > tol {
                report.failures += 1;
            }
            *g = device.conductance(g_min, g_max);
        }
        xbar.commit_writes();
        report
    }

    /// Programs and checks that every cell reads back its intended code.
    ///
    /// Returns the report and the number of cells whose read-back code
    /// differs from the target.
    pub fn program_and_verify(
        &self,
        xbar: &mut Crossbar,
        codes: &[u32],
    ) -> (ProgrammingReport, usize) {
        let report = self.program(xbar, codes);
        let cols = xbar.cols();
        let mismatches = codes
            .iter()
            .enumerate()
            .filter(|&(i, &code)| xbar.read_cell(i / cols, i % cols) != code)
            .count();
        (report, mismatches)
    }
}

/// Convenience: builds a crossbar and programs it physically.
///
/// # Panics
///
/// Panics if `codes.len() != rows × cols`.
pub fn program_physical(
    rows: usize,
    cols: usize,
    spec: CellSpec,
    codes: &[u32],
) -> (Crossbar, ProgrammingReport) {
    let mut xbar = Crossbar::new(rows, cols, spec);
    let report = ArrayProgrammer::with_defaults().program(&mut xbar, codes);
    (xbar, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmed_cells_read_back_their_codes() {
        let codes: Vec<u32> = (0..16).map(|i| (i % 4) as u32).collect();
        let (xbar, report) = program_physical(4, 4, CellSpec::paper_2bit(), &codes);
        assert_eq!(report.failures, 0, "write-verify failed: {report:?}");
        for (i, &code) in codes.iter().enumerate() {
            assert_eq!(xbar.read_cell(i / 4, i % 4), code, "cell {i}");
        }
    }

    #[test]
    fn already_programmed_cells_cost_no_pulses() {
        let codes = vec![0u32; 4];
        let (mut xbar, first) = program_physical(2, 2, CellSpec::paper_2bit(), &codes);
        assert!(first.pulses == 0 || first.mean_pulses() < 1.0);
        // Reprogramming to the same codes costs nothing.
        let again = ArrayProgrammer::with_defaults().program(&mut xbar, &codes);
        assert_eq!(again.pulses, 0);
    }

    #[test]
    fn larger_state_changes_cost_more_pulses() {
        let spec = CellSpec::paper_2bit();
        let mut near = Crossbar::new(1, 1, spec);
        let mut far = Crossbar::new(1, 1, spec);
        let p = ArrayProgrammer::with_defaults();
        let near_report = p.program(&mut near, &[1]);
        let far_report = p.program(&mut far, &[3]);
        assert!(far_report.pulses > near_report.pulses);
    }

    #[test]
    fn report_statistics() {
        let codes = vec![3u32; 9];
        let (_, report) = program_physical(3, 3, CellSpec::paper_2bit(), &codes);
        assert_eq!(report.cells, 9);
        assert!(report.mean_pulses() > 0.0);
        assert!(report.worst_case_pulses >= report.mean_pulses() as usize);
        assert!(report.total_time_ns(1000.0) > 0.0);
    }

    #[test]
    fn programmed_array_computes_correct_products() {
        // Tight write-verify (0.05 steps/cell) keeps the accumulated error
        // of an 8-row column well under half a code unit.
        let codes: Vec<u32> = (0..32).map(|i| ((i * 5) % 4) as u32).collect();
        let mut xbar = Crossbar::new(8, 4, CellSpec::paper_2bit());
        let programmer = ArrayProgrammer::new(VteamParams::default(), 0.05, 100_000);
        let report = programmer.program(&mut xbar, &codes);
        assert_eq!(report.failures, 0);
        let inputs = [1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let bits = [1u8, 0, 1, 1, 0, 1, 0, 1];
        let currents = xbar.column_currents(&inputs, 0..8);
        for (c, got) in currents.iter().enumerate() {
            let want = xbar.reference_dot(c, &bits, 0..8) as f64;
            assert!(
                (got - want).abs() < 0.5,
                "col {c}: {got} vs {want} (write-verify tolerance)"
            );
        }
    }
}
