//! Read-path analog noise.
//!
//! Beyond static device variation, every analog read suffers dynamic noise
//! (thermal/shot noise in the array, comparator noise in the ADC — paper
//! refs. \[31, 32\]). The paper's argument for fine-grained sub-arrays is
//! that small accumulated currents over a small full-scale are *less
//! susceptible* to this noise than coarse designs (§II-C); this model makes
//! that claim testable.

use forms_rng::Rng;
use forms_rng::{Distribution, Normal};

/// Additive Gaussian current noise, in the crossbar's code units.
///
/// `sigma_floor` models input-referred converter noise that is independent
/// of signal level; `sigma_per_unit` models array noise that grows with the
/// accumulated current (shot-noise-like, linearized).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurrentNoise {
    sigma_floor: f64,
    sigma_per_unit: f64,
}

impl CurrentNoise {
    /// Creates a noise model.
    ///
    /// # Panics
    ///
    /// Panics if either sigma is negative or not finite.
    pub fn new(sigma_floor: f64, sigma_per_unit: f64) -> Self {
        assert!(
            sigma_floor.is_finite() && sigma_floor >= 0.0,
            "sigma_floor must be non-negative"
        );
        assert!(
            sigma_per_unit.is_finite() && sigma_per_unit >= 0.0,
            "sigma_per_unit must be non-negative"
        );
        Self {
            sigma_floor,
            sigma_per_unit,
        }
    }

    /// Noiseless model.
    pub fn none() -> Self {
        Self::new(0.0, 0.0)
    }

    /// A representative read-noise point: 0.1 code units of floor noise
    /// plus 1% signal-proportional noise.
    pub fn typical() -> Self {
        Self::new(0.1, 0.01)
    }

    /// The constant noise floor in code units.
    pub fn sigma_floor(&self) -> f64 {
        self.sigma_floor
    }

    /// The signal-proportional component.
    pub fn sigma_per_unit(&self) -> f64 {
        self.sigma_per_unit
    }

    /// Whether this model adds no noise at all.
    pub fn is_none(&self) -> bool {
        self.sigma_floor == 0.0 && self.sigma_per_unit == 0.0
    }

    /// Standard deviation at a given signal current (code units).
    pub fn sigma_at(&self, current: f64) -> f64 {
        // Independent sources add in quadrature.
        let proportional = self.sigma_per_unit * current.abs();
        (self.sigma_floor * self.sigma_floor + proportional * proportional).sqrt()
    }

    /// Perturbs one current reading.
    pub fn perturb<R: Rng + ?Sized>(&self, current: f64, rng: &mut R) -> f64 {
        if self.is_none() {
            return current;
        }
        let sigma = self.sigma_at(current);
        if sigma == 0.0 {
            return current;
        }
        current
            + Normal::new(0.0, sigma)
                .expect("validated sigma")
                .sample(rng)
    }
}

impl Default for CurrentNoise {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = CurrentNoise::none();
        assert!(n.is_none());
        assert_eq!(n.perturb(12.5, &mut rng), 12.5);
    }

    #[test]
    fn sigma_grows_with_signal() {
        let n = CurrentNoise::new(0.1, 0.02);
        assert!(n.sigma_at(100.0) > n.sigma_at(1.0));
        // Floor dominates at zero signal.
        assert!((n.sigma_at(0.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn quadrature_combination() {
        let n = CurrentNoise::new(3.0, 0.04);
        // At current 100: proportional = 4 → total = 5.
        assert!((n.sigma_at(100.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_sigma_matches_model() {
        let n = CurrentNoise::new(0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let m = 20_000;
        let samples: Vec<f64> = (0..m).map(|_| n.perturb(10.0, &mut rng) - 10.0).collect();
        let mean: f64 = samples.iter().sum::<f64>() / m as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / m as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        CurrentNoise::new(-1.0, 0.0);
    }
}
