//! Multi-bit ReRAM cells and analog crossbar arrays.

use std::ops::Range;

/// Specification of a multi-bit ReRAM cell: `2^bits` linearly spaced
/// conductance states between `g_min` (code 0) and `g_max` (top code),
/// in microsiemens.
///
/// The unit conductance step `(g_max - g_min) / (2^bits - 1)` is what one
/// least-significant code contributes to a column current at unit read
/// voltage; the crossbar and ADC work in these units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellSpec {
    bits: u32,
    g_min: f64,
    g_max: f64,
}

impl CellSpec {
    /// Creates a cell spec.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 8, or `g_max <= g_min`, or `g_min < 0`.
    pub fn new(bits: u32, g_min: f64, g_max: f64) -> Self {
        assert!((1..=8).contains(&bits), "cell bits must be in 1..=8");
        assert!(g_min >= 0.0, "conductance cannot be negative");
        assert!(g_max > g_min, "g_max must exceed g_min");
        Self { bits, g_min, g_max }
    }

    /// The paper's design point: 2-bit cells. Conductance range follows the
    /// commonly used 1–61 µS window of HfO₂ devices.
    pub fn paper_2bit() -> Self {
        Self::new(2, 1.0, 61.0)
    }

    /// Bits per cell.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of programmable states.
    pub fn states(&self) -> u32 {
        1 << self.bits
    }

    /// Largest storable code.
    pub fn max_code(&self) -> u32 {
        self.states() - 1
    }

    /// Minimum (code 0) conductance in µS.
    #[inline]
    pub fn g_min(&self) -> f64 {
        self.g_min
    }

    /// Maximum (top code) conductance in µS.
    pub fn g_max(&self) -> f64 {
        self.g_max
    }

    /// Conductance step per code in µS.
    #[inline]
    pub fn g_step(&self) -> f64 {
        (self.g_max - self.g_min) / self.max_code() as f64
    }

    /// Conductance for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the largest storable code.
    pub fn conductance(&self, code: u32) -> f64 {
        assert!(
            code <= self.max_code(),
            "code {code} exceeds cell capacity {}",
            self.max_code()
        );
        self.g_min + code as f64 * self.g_step()
    }

    /// Nearest code for a (possibly perturbed) conductance, saturating at
    /// the cell's range.
    pub fn code_for(&self, conductance: f64) -> u32 {
        let code = ((conductance - self.g_min) / self.g_step()).round();
        code.clamp(0.0, self.max_code() as f64) as u32
    }
}

/// An analog ReRAM crossbar array.
///
/// Conductances are stored per cell; [`column_currents`](Self::column_currents)
/// implements the in-situ multiply-accumulate `i_o = Gᵀ·v` over a row window
/// so that fine-grained (fragment) activation can be simulated directly.
///
/// Currents are reported in *code units*: the common-mode term contributed
/// by `g_min` is subtracted and the result divided by the conductance step,
/// so an ideal array yields exactly the integer dot product of codes and
/// binary inputs. (Real designs cancel the common mode with a reference
/// column; modelling it as a subtraction is equivalent and keeps the ADC
/// interface in integer units.)
///
/// # Write visibility
///
/// The packed read paths ([`column_currents_packed_into`](Self::column_currents_packed_into),
/// [`dequant_row_into`](Self::dequant_row_into)) serve from a hoisted
/// dequantized-cell table. Programming through [`program_codes`](Self::program_codes)
/// / [`program_cell`](Self::program_cell) keeps that table in sync, but
/// *direct* conductance mutation via
/// [`conductances_mut`](Self::conductances_mut) (variation / fault
/// injection) marks the array dirty and the packed paths panic until
/// [`commit_writes`](Self::commit_writes) rebuilds the table — stale reads
/// are a bug, never a silent wrong answer.
#[derive(Clone, Debug)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    spec: CellSpec,
    conductances: Vec<f64>,
    /// Hoisted `(g - g_min) / step` per cell, bitwise the terms the raw
    /// read paths compute on the fly.
    dequant: Vec<f64>,
    /// Integer image of `dequant`, valid only while `integral` holds: the
    /// batched MVM kernels accumulate these as machine integers instead of
    /// f64, which is exact (and therefore bitwise identical) because every
    /// partial sum is an integer well below 2^53.
    dequant_codes: Vec<u16>,
    /// Whether every dequantized cell value is *exactly* an in-range
    /// integer (`0 ..= max_code`). True for any array programmed through
    /// code paths (including stuck-at faults, which land on conductance
    /// rails); conductance drift breaks it and routes readers back to the
    /// f64 path.
    integral: bool,
    /// Set by `conductances_mut`, cleared by `commit_writes`.
    dirty: bool,
}

/// Equality is over the physical state (dimensions, cell spec, raw
/// conductances); the derived dequant table and dirty flag are excluded.
impl PartialEq for Crossbar {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.spec == other.spec
            && self.conductances == other.conductances
    }
}

impl Crossbar {
    /// Creates an array with every cell at `g_min` (code 0).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, spec: CellSpec) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be positive");
        Self {
            rows,
            cols,
            spec,
            conductances: vec![spec.g_min(); rows * cols],
            // Code 0 dequantizes to exactly 0.0.
            dequant: vec![0.0; rows * cols],
            dequant_codes: vec![0; rows * cols],
            integral: true,
            dirty: false,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cell specification.
    pub fn spec(&self) -> &CellSpec {
        &self.spec
    }

    /// Raw conductances in row-major order (µS).
    pub fn conductances(&self) -> &[f64] {
        &self.conductances
    }

    /// Mutable raw conductances (for variation/fault injection).
    ///
    /// Marks the array dirty: the hoisted dequant table no longer matches
    /// the cells, so the packed read paths refuse to run until
    /// [`commit_writes`](Self::commit_writes) is called.
    pub fn conductances_mut(&mut self) -> &mut [f64] {
        self.dirty = true;
        &mut self.conductances
    }

    /// Whether direct conductance writes are pending a
    /// [`commit_writes`](Self::commit_writes).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Rebuilds the hoisted dequantized-cell table from the raw
    /// conductances and clears the dirty flag. Must be called after any
    /// mutation through [`conductances_mut`](Self::conductances_mut)
    /// before the packed read paths are used again.
    pub fn commit_writes(&mut self) {
        let step = self.spec.g_step();
        let g_min = self.spec.g_min();
        let max = f64::from(self.spec.max_code());
        self.integral = true;
        for ((d, code), &g) in self
            .dequant
            .iter_mut()
            .zip(&mut self.dequant_codes)
            .zip(&self.conductances)
        {
            let v = (g - g_min) / step;
            *d = v;
            if v >= 0.0 && v <= max && v.fract() == 0.0 {
                *code = v as u16;
            } else {
                self.integral = false;
            }
        }
        self.dirty = false;
    }

    /// Programs every cell from row-major codes.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows * cols` or any code overflows the
    /// cell.
    pub fn program_codes(&mut self, codes: &[u32]) {
        assert_eq!(
            codes.len(),
            self.rows * self.cols,
            "expected {} codes, got {}",
            self.rows * self.cols,
            codes.len()
        );
        for (g, &code) in self.conductances.iter_mut().zip(codes) {
            *g = self.spec.conductance(code);
        }
        // Every cell was rewritten, so the rebuilt table covers any prior
        // direct mutation too.
        self.commit_writes();
    }

    /// Programs one cell.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds or the code overflows.
    pub fn program_cell(&mut self, row: usize, col: usize, code: u32) {
        assert!(row < self.rows && col < self.cols, "cell out of bounds");
        let idx = row * self.cols + col;
        let g = self.spec.conductance(code);
        self.conductances[idx] = g;
        let v = (g - self.spec.g_min()) / self.spec.g_step();
        self.dequant[idx] = v;
        // Keep the integer image in lockstep. A programmed code usually
        // dequantizes exactly (conductance() and the division round-trip
        // through small integers), but an awkward `g_min`/`g_step` pair can
        // leave float residue — then the whole array conservatively drops
        // to the f64 path until a full `commit_writes` re-audit.
        if v >= 0.0 && v <= f64::from(self.spec.max_code()) && v.fract() == 0.0 {
            self.dequant_codes[idx] = v as u16;
        } else {
            self.integral = false;
        }
    }

    /// Reads back the nearest code of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn read_cell(&self, row: usize, col: usize) -> u32 {
        assert!(row < self.rows && col < self.cols, "cell out of bounds");
        self.spec.code_for(self.conductances[row * self.cols + col])
    }

    /// In-situ analog MVM over a row window: for each column, the summed
    /// current of `conductance × input`, converted to code units (see type
    /// docs). `inputs` supplies one read voltage per row in the window,
    /// normally 0.0 or 1.0 from the 1-bit DACs.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of bounds or `inputs.len()` differs from
    /// the window length.
    pub fn column_currents(&self, inputs: &[f64], rows: Range<usize>) -> Vec<f64> {
        assert!(rows.end <= self.rows, "row window out of bounds");
        assert_eq!(
            inputs.len(),
            rows.len(),
            "need one input per active row ({} vs {})",
            inputs.len(),
            rows.len()
        );
        let step = self.spec.g_step();
        let g_min = self.spec.g_min();
        let mut currents = vec![0.0f64; self.cols];
        for (i, r) in rows.enumerate() {
            let v = inputs[i];
            if v == 0.0 {
                continue;
            }
            let row = &self.conductances[r * self.cols..(r + 1) * self.cols];
            for (c, &g) in row.iter().enumerate() {
                currents[c] += (g - g_min) / step * v;
            }
        }
        currents
    }

    /// [`column_currents`](Self::column_currents) without the allocation:
    /// writes each column's current into `out` (overwritten, not
    /// accumulated). The summation order per column is identical to the
    /// allocating variant, so results are bitwise equal.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of bounds, `inputs.len()` differs from
    /// the window length, or `out.len()` differs from the column count.
    pub fn column_currents_into(&self, inputs: &[f64], rows: Range<usize>, out: &mut [f64]) {
        assert!(rows.end <= self.rows, "row window out of bounds");
        assert_eq!(
            inputs.len(),
            rows.len(),
            "need one input per active row ({} vs {})",
            inputs.len(),
            rows.len()
        );
        assert_eq!(out.len(), self.cols, "need one output slot per column");
        let step = self.spec.g_step();
        let g_min = self.spec.g_min();
        out.fill(0.0);
        for (i, r) in rows.enumerate() {
            let v = inputs[i];
            if v == 0.0 {
                continue;
            }
            let row = &self.conductances[r * self.cols..(r + 1) * self.cols];
            for (acc, &g) in out.iter_mut().zip(row) {
                *acc += (g - g_min) / step * v;
            }
        }
    }

    /// The packed-drive variant of
    /// [`column_currents_into`](Self::column_currents_into): one bit plane
    /// of 1-bit-DAC inputs packed into `u64` words (bit `i` of `mask`
    /// drives row `rows.start + i`; see `forms_reram::pack_bit_planes`).
    ///
    /// `out` may cover a *prefix* of the columns (`out.len() <= cols`): the
    /// MVM kernels only read the cell columns a layer actually occupies.
    /// Active rows are visited in ascending order, matching the term order
    /// of [`column_current`](Self::column_current) /
    /// [`column_currents`](Self::column_currents) bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of bounds, `mask` holds fewer than
    /// `rows.len()` bits, `out.len()` exceeds the column count, or
    /// direct conductance writes are pending a
    /// [`commit_writes`](Self::commit_writes).
    pub fn column_currents_packed_into(&self, mask: &[u64], rows: Range<usize>, out: &mut [f64]) {
        assert!(rows.end <= self.rows, "row window out of bounds");
        assert!(
            mask.len() * 64 >= rows.len(),
            "need one mask bit per active row ({} bits for {} rows)",
            mask.len() * 64,
            rows.len()
        );
        assert!(out.len() <= self.cols, "output wider than the crossbar");
        assert!(
            !self.dirty,
            "stale packed read: commit_writes() after conductances_mut()"
        );
        let window = rows.len();
        out.fill(0.0);
        crate::packing::for_each_set_bit(mask, |i| {
            if i >= window {
                return;
            }
            let r = rows.start + i;
            let row = &self.dequant[r * self.cols..r * self.cols + out.len()];
            for (acc, &d) in out.iter_mut().zip(row) {
                *acc += d;
            }
        });
    }

    /// Writes the dequantized cell values `(g - g_min) / step` of one row's
    /// leading `out.len()` columns into `out` — the per-cell terms every
    /// current read sums. Hoisting them out of the bit-serial drive loop
    /// lets an MVM kernel pay the division once per cell instead of once
    /// per cell *per cycle*; the cached values are bitwise the terms
    /// [`column_currents`](Self::column_currents) computes.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of bounds, `out.len()` exceeds the column
    /// count, or direct conductance writes are pending a
    /// [`commit_writes`](Self::commit_writes).
    pub fn dequant_row_into(&self, row: usize, out: &mut [f64]) {
        assert!(row < self.rows, "row out of bounds");
        assert!(out.len() <= self.cols, "output wider than the crossbar");
        assert!(
            !self.dirty,
            "stale packed read: commit_writes() after conductances_mut()"
        );
        out.copy_from_slice(&self.dequant[row * self.cols..row * self.cols + out.len()]);
    }

    /// The integer image of the dequantized cell table, row-major, when —
    /// and only when — every cell dequantizes to an *exact* integer in
    /// `0 ..= max_code`. `None` otherwise (e.g. after conductance drift).
    ///
    /// While `Some`, `table[i] as f64 == dequant(i)` bitwise for every
    /// cell, so a kernel may accumulate these as machine integers and get
    /// results identical to the f64 current path: all partial sums are
    /// exact integers far below 2^53, and a lossless ADC (full scale on
    /// the top code, range covering the window's maximum current) converts
    /// such integers to themselves.
    ///
    /// # Panics
    ///
    /// Panics if direct conductance writes are pending a
    /// [`commit_writes`](Self::commit_writes).
    pub fn integral_dequant_codes(&self) -> Option<&[u16]> {
        assert!(
            !self.dirty,
            "stale packed read: commit_writes() after conductances_mut()"
        );
        self.integral.then_some(self.dequant_codes.as_slice())
    }

    /// Copies the integer dequantized codes of one row's leading
    /// `out.len()` columns into `out` — the u16 mirror of
    /// [`dequant_row_into`](Self::dequant_row_into) for integral arrays.
    ///
    /// # Panics
    ///
    /// Panics if the array is not integral (see
    /// [`integral_dequant_codes`](Self::integral_dequant_codes)), the row
    /// is out of bounds, `out.len()` exceeds the column count, or writes
    /// are pending a [`commit_writes`](Self::commit_writes).
    pub fn integral_row_into(&self, row: usize, out: &mut [u16]) {
        assert!(row < self.rows, "row out of bounds");
        assert!(out.len() <= self.cols, "output wider than the crossbar");
        assert!(
            !self.dirty,
            "stale packed read: commit_writes() after conductances_mut()"
        );
        assert!(self.integral, "integral read from a non-integral array");
        out.copy_from_slice(&self.dequant_codes[row * self.cols..row * self.cols + out.len()]);
    }

    /// Current of a single column over a row window, in code units — the
    /// per-fragment read the FORMS mapping performs.
    ///
    /// # Panics
    ///
    /// Panics if the window or column is out of bounds, or input length
    /// mismatches.
    pub fn column_current(&self, col: usize, inputs: &[f64], rows: Range<usize>) -> f64 {
        assert!(col < self.cols, "column out of bounds");
        assert!(rows.end <= self.rows, "row window out of bounds");
        assert_eq!(
            inputs.len(),
            rows.len(),
            "need one input per active row ({} vs {})",
            inputs.len(),
            rows.len()
        );
        let step = self.spec.g_step();
        let g_min = self.spec.g_min();
        rows.enumerate()
            .map(|(i, r)| {
                let v = inputs[i];
                if v == 0.0 {
                    0.0
                } else {
                    (self.conductances[r * self.cols + col] - g_min) / step * v
                }
            })
            .sum()
    }

    /// Integer dot product of one column's codes against binary inputs over
    /// a row window — the digital reference the analog path is checked
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if the window or column is out of bounds, or input length
    /// mismatches.
    pub fn reference_dot(&self, col: usize, inputs: &[u8], rows: Range<usize>) -> u64 {
        assert!(col < self.cols, "column out of bounds");
        assert!(rows.end <= self.rows, "row window out of bounds");
        assert_eq!(inputs.len(), rows.len(), "input length mismatch");
        rows.enumerate()
            .map(|(i, r)| self.read_cell(r, col) as u64 * inputs[i] as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_code_conductance_round_trip() {
        let spec = CellSpec::paper_2bit();
        for code in 0..=spec.max_code() {
            assert_eq!(spec.code_for(spec.conductance(code)), code);
        }
    }

    #[test]
    fn spec_code_for_saturates() {
        let spec = CellSpec::paper_2bit();
        assert_eq!(spec.code_for(-5.0), 0);
        assert_eq!(spec.code_for(1000.0), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds cell capacity")]
    fn overflowing_code_rejected() {
        CellSpec::paper_2bit().conductance(4);
    }

    #[test]
    fn program_and_read_back() {
        let mut xb = Crossbar::new(2, 3, CellSpec::paper_2bit());
        xb.program_codes(&[0, 1, 2, 3, 2, 1]);
        assert_eq!(xb.read_cell(0, 0), 0);
        assert_eq!(xb.read_cell(1, 0), 3);
        assert_eq!(xb.read_cell(1, 2), 1);
    }

    #[test]
    fn currents_equal_integer_dot_products() {
        let mut xb = Crossbar::new(4, 2, CellSpec::paper_2bit());
        xb.program_codes(&[3, 1, 2, 0, 1, 3, 0, 2]);
        let inputs = [1.0, 0.0, 1.0, 1.0];
        let currents = xb.column_currents(&inputs, 0..4);
        let bits = [1u8, 0, 1, 1];
        for (c, got) in currents.iter().enumerate() {
            let want = xb.reference_dot(c, &bits, 0..4) as f64;
            assert!((got - want).abs() < 1e-9, "col {c}: {got} vs {want}");
        }
    }

    #[test]
    fn fragment_window_activates_subset() {
        let mut xb = Crossbar::new(8, 1, CellSpec::paper_2bit());
        xb.program_codes(&[3; 8]);
        let all = xb.column_currents(&[1.0; 8], 0..8);
        let frag = xb.column_currents(&[1.0; 4], 4..8);
        assert!((all[0] - 24.0).abs() < 1e-9);
        assert!((frag[0] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn zero_inputs_draw_no_signal_current() {
        let mut xb = Crossbar::new(4, 4, CellSpec::paper_2bit());
        xb.program_codes(&[3; 16]);
        let currents = xb.column_currents(&[0.0; 4], 0..4);
        assert!(currents.iter().all(|&c| c == 0.0));
    }

    #[test]
    #[should_panic(expected = "one input per active row")]
    fn wrong_input_length_rejected() {
        let xb = Crossbar::new(4, 4, CellSpec::paper_2bit());
        xb.column_currents(&[1.0; 3], 0..4);
    }

    #[test]
    fn currents_into_matches_allocating_variant() {
        let mut xb = Crossbar::new(4, 3, CellSpec::paper_2bit());
        xb.program_codes(&[3, 1, 2, 0, 1, 3, 0, 2, 1, 2, 0, 3]);
        let inputs = [1.0, 0.0, 1.0];
        let want = xb.column_currents(&inputs, 1..4);
        let mut got = [0.0; 3];
        xb.column_currents_into(&inputs, 1..4, &mut got);
        assert_eq!(want.as_slice(), got.as_slice());
    }

    #[test]
    fn packed_currents_match_dense_drive() {
        let mut xb = Crossbar::new(8, 4, CellSpec::paper_2bit());
        let codes: Vec<u32> = (0..32).map(|i| (i * 7) % 4).collect();
        xb.program_codes(&codes);
        // Drive rows 2,3,5,7 of the window 1..8 (window-local 1,2,4,6).
        let mask = [0b0101_0110u64];
        let dense: Vec<f64> = (0..7)
            .map(|i| if mask[0] & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        let want = xb.column_currents(&dense, 1..8);
        let mut got = [0.0; 4];
        xb.column_currents_packed_into(&mask, 1..8, &mut got);
        assert_eq!(want.as_slice(), got.as_slice());
        // Prefix output: only the first two columns.
        let mut prefix = [9.0; 2];
        xb.column_currents_packed_into(&mask, 1..8, &mut prefix);
        assert_eq!(prefix.as_slice(), &got[..2]);
    }

    #[test]
    fn packed_currents_ignore_bits_past_the_window() {
        let mut xb = Crossbar::new(4, 1, CellSpec::paper_2bit());
        xb.program_codes(&[3; 4]);
        // Bits beyond the 2-row window must not contribute.
        let mut out = [0.0; 1];
        xb.column_currents_packed_into(&[0b1111], 0..2, &mut out);
        assert!((out[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dequant_row_matches_current_terms() {
        let mut xb = Crossbar::new(4, 3, CellSpec::paper_2bit());
        xb.program_codes(&[3, 1, 2, 0, 1, 3, 0, 2, 1, 2, 0, 3]);
        for row in 0..4 {
            let mut vals = [0.0f64; 3];
            xb.dequant_row_into(row, &mut vals);
            // Driving only this row reads back exactly the cached terms.
            let mut want = [0.0f64; 3];
            xb.column_currents_into(&[1.0], row..row + 1, &mut want);
            assert_eq!(vals, want);
        }
        // Prefix output covers only the leading columns.
        let mut prefix = [9.0f64; 2];
        xb.dequant_row_into(1, &mut prefix);
        let mut full = [0.0f64; 3];
        xb.column_currents_into(&[1.0], 1..2, &mut full);
        assert_eq!(prefix.as_slice(), &full[..2]);
    }

    #[test]
    fn direct_mutation_requires_commit_before_packed_reads() {
        let mut xb = Crossbar::new(4, 2, CellSpec::paper_2bit());
        xb.program_codes(&[3, 1, 2, 0, 1, 3, 0, 2]);
        assert!(!xb.is_dirty());
        xb.conductances_mut()[0] = xb.spec().g_max();
        assert!(xb.is_dirty());
        xb.commit_writes();
        assert!(!xb.is_dirty());
        // After commit the packed read sees the mutation, bitwise equal to
        // the raw (uncached) read path.
        let mut packed = [0.0; 2];
        xb.column_currents_packed_into(&[0b1111], 0..4, &mut packed);
        let mut raw = [0.0; 2];
        xb.column_currents_into(&[1.0; 4], 0..4, &mut raw);
        assert_eq!(packed, raw);
        let mut row = [0.0; 2];
        xb.dequant_row_into(0, &mut row);
        assert_eq!(
            row[0],
            (xb.spec().g_max() - xb.spec().g_min()) / xb.spec().g_step()
        );
    }

    #[test]
    #[should_panic(expected = "stale packed read")]
    fn uncommitted_mutation_panics_on_packed_read() {
        let mut xb = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xb.program_codes(&[1; 4]);
        xb.conductances_mut()[3] = 9.0;
        let mut out = [0.0; 2];
        xb.column_currents_packed_into(&[0b11], 0..2, &mut out);
    }

    #[test]
    #[should_panic(expected = "stale packed read")]
    fn uncommitted_mutation_panics_on_dequant_read() {
        let mut xb = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xb.program_codes(&[1; 4]);
        xb.conductances_mut()[0] = 9.0;
        let mut out = [0.0; 2];
        xb.dequant_row_into(0, &mut out);
    }

    #[test]
    fn reprogramming_clears_pending_writes() {
        let mut xb = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xb.conductances_mut()[0] = 9.0;
        xb.program_codes(&[2; 4]);
        assert!(!xb.is_dirty());
        let mut out = [0.0; 2];
        xb.dequant_row_into(0, &mut out);
        assert_eq!(out, [2.0, 2.0]);
    }

    #[test]
    fn programmed_arrays_expose_integral_codes() {
        let mut xb = Crossbar::new(4, 3, CellSpec::paper_2bit());
        xb.program_codes(&[3, 1, 2, 0, 1, 3, 0, 2, 1, 2, 0, 3]);
        let codes = xb.integral_dequant_codes().expect("programmed = integral");
        assert_eq!(codes, &[3, 1, 2, 0, 1, 3, 0, 2, 1, 2, 0, 3]);
        // The integer image matches the f64 table bitwise.
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(f64::from(c), xb.dequant[i]);
        }
        let mut row = [0u16; 3];
        xb.integral_row_into(1, &mut row);
        assert_eq!(row, [0, 1, 3]);
    }

    #[test]
    fn stuck_at_rails_keep_the_array_integral() {
        let mut xb = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xb.program_codes(&[1, 2, 3, 0]);
        // Stuck-at faults land on conductance rails = exact codes.
        xb.conductances_mut()[0] = xb.spec().g_max();
        xb.conductances_mut()[3] = xb.spec().g_min();
        xb.commit_writes();
        assert_eq!(xb.integral_dequant_codes(), Some([3, 2, 3, 0].as_slice()));
    }

    #[test]
    fn drifted_cells_drop_the_integral_image() {
        let mut xb = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xb.program_codes(&[1, 2, 3, 0]);
        xb.conductances_mut()[1] *= 1.01; // off-grid conductance
        xb.commit_writes();
        assert_eq!(xb.integral_dequant_codes(), None);
        // Reprogramming restores it.
        xb.program_codes(&[0, 1, 2, 3]);
        assert_eq!(xb.integral_dequant_codes(), Some([0, 1, 2, 3].as_slice()));
    }

    #[test]
    fn out_of_range_integral_values_are_rejected() {
        // An integer dequant value above max_code must NOT count as
        // integral: the lossless-ADC identity only holds in range.
        let mut xb = Crossbar::new(1, 1, CellSpec::paper_2bit());
        let over = xb.spec().g_min() + 4.0 * xb.spec().g_step();
        xb.conductances_mut()[0] = over; // dequantizes to exactly 4.0 > 3
        xb.commit_writes();
        assert_eq!(xb.integral_dequant_codes(), None);
    }

    #[test]
    #[should_panic(expected = "stale packed read")]
    fn uncommitted_mutation_panics_on_integral_read() {
        let mut xb = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xb.program_codes(&[1; 4]);
        xb.conductances_mut()[0] = 9.0;
        let _ = xb.integral_dequant_codes();
    }

    #[test]
    fn analog_values_respect_fractional_inputs() {
        let mut xb = Crossbar::new(2, 1, CellSpec::paper_2bit());
        xb.program_codes(&[2, 2]);
        let c = xb.column_currents(&[0.5, 0.25], 0..2);
        assert!((c[0] - 1.5).abs() < 1e-9);
    }
}
