//! # forms-reram
//!
//! Behavioural ReRAM crossbar simulation for the FORMS (ISCA 2021)
//! reproduction.
//!
//! The paper evaluates on modelled hardware (VTEAM device model, NVSIM
//! arrays). This crate is the Rust stand-in at the same behavioural level:
//!
//! - [`CellSpec`] — multi-bit conductance cells with a linear
//!   code-to-conductance map,
//! - [`VteamDevice`] — a VTEAM-inspired threshold write model used to
//!   program cells with voltage pulses,
//! - [`Crossbar`] — an analog array computing column currents
//!   `i = Gᵀ·v` over arbitrary row windows (fragments),
//! - [`BitSlicer`] — weight-magnitude bit-slicing across
//!   `weight_bits / cell_bits` cells,
//! - [`Adc`] / [`Dac`] — converter transfer functions with saturation,
//! - [`LogNormalVariation`] / [`StuckAtFault`] — the device non-idealities
//!   behind the paper's Table VI.
//!
//! With ideal devices and sufficient ADC resolution the analog pipeline
//! reproduces integer dot products *exactly*; the property tests pin that
//! down, and the variation experiments then perturb away from it.
//!
//! # Example
//!
//! ```
//! use forms_reram::{Adc, CellSpec, Crossbar};
//!
//! let spec = CellSpec::new(2, 1.0, 61.0);
//! let mut xbar = Crossbar::new(4, 4, spec);
//! xbar.program_codes(&[3, 0, 1, 2, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
//! let currents = xbar.column_currents(&[1.0, 0.0, 1.0, 0.0], 0..4);
//! // Column 0 sees cells with codes 3 and 1 active: 3 + 1 = 4 units.
//! let adc = Adc::ideal_for(4, &spec);
//! assert_eq!(adc.convert(currents[0], &spec), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitslice;
mod converters;
mod crossbar;
mod device;
mod faults;
mod irdrop;
mod noise;
mod packing;
mod programming;
mod variation;

pub use bitslice::BitSlicer;
pub use converters::{Adc, Dac};
pub use crossbar::{CellSpec, Crossbar};
pub use device::{VteamDevice, VteamParams};
pub use faults::{FaultCampaign, FaultReport};
pub use irdrop::IrDropModel;
pub use noise::CurrentNoise;
pub use packing::{
    for_each_set_bit, pack_bit_planes, pack_tile_bit_planes, plane_is_zero, plane_ones, plane_words,
};
pub use programming::{program_physical, ArrayProgrammer, ProgrammingReport};
pub use variation::{LogNormalVariation, StuckAtFault, StuckAtKind};
