//! Weight-magnitude bit-slicing across multi-bit cells.
//!
//! A `weight_bits`-bit magnitude is spread over
//! `ceil(weight_bits / cell_bits)` adjacent cells on the same crossbar row
//! (paper §III-C: "we need four 2-bit ReRAM cells to represent one 8-bit
//! weight"), most-significant slice first. Column results are recombined by
//! the shift-&-add units with weights `2^(cell_bits·k)`.

use crate::CellSpec;

/// Splits weight magnitudes into per-cell codes and recombines sliced
/// column results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BitSlicer {
    weight_bits: u32,
    cell_bits: u32,
}

impl BitSlicer {
    /// Creates a slicer for `weight_bits`-bit magnitudes on cells of
    /// `cell_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if either is zero or `weight_bits > 32`.
    pub fn new(weight_bits: u32, cell_bits: u32) -> Self {
        assert!(
            weight_bits > 0 && weight_bits <= 32,
            "weight bits must be in 1..=32"
        );
        assert!(cell_bits > 0, "cell bits must be positive");
        Self {
            weight_bits,
            cell_bits,
        }
    }

    /// Weight magnitude bits.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Bits per cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Cells (columns) per weight.
    pub fn cells_per_weight(&self) -> usize {
        self.weight_bits.div_ceil(self.cell_bits) as usize
    }

    /// Largest representable magnitude.
    pub fn max_magnitude(&self) -> u64 {
        if self.weight_bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.weight_bits) - 1
        }
    }

    /// Slices a magnitude into per-cell codes, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude` exceeds [`max_magnitude`](Self::max_magnitude).
    pub fn slice(&self, magnitude: u32) -> Vec<u32> {
        assert!(
            (magnitude as u64) <= self.max_magnitude(),
            "magnitude {magnitude} exceeds {} bits",
            self.weight_bits
        );
        let n = self.cells_per_weight();
        let mask = (1u32 << self.cell_bits) - 1;
        (0..n)
            .rev()
            .map(|k| (magnitude >> (k as u32 * self.cell_bits)) & mask)
            .collect()
    }

    /// Recombines per-slice column results (most-significant first) into
    /// the full dot-product value: `Σ slice_k · 2^(cell_bits·(n−1−k))`.
    pub fn recombine(&self, slice_results: &[u64]) -> u64 {
        assert_eq!(
            slice_results.len(),
            self.cells_per_weight(),
            "need one result per slice"
        );
        slice_results
            .iter()
            .fold(0u64, |acc, &r| (acc << self.cell_bits) + r)
    }

    /// Checks that a slice vector is consistent with the cell spec.
    pub fn fits(&self, spec: &CellSpec) -> bool {
        self.cell_bits == spec.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_8bit_on_2bit_cells() {
        let s = BitSlicer::new(8, 2);
        assert_eq!(s.cells_per_weight(), 4);
        assert_eq!(s.slice(0b11_01_10_00), vec![0b11, 0b01, 0b10, 0b00]);
    }

    #[test]
    fn paper_example_16bit_on_2bit_cells() {
        assert_eq!(BitSlicer::new(16, 2).cells_per_weight(), 8);
    }

    #[test]
    fn slice_recombine_round_trip() {
        let s = BitSlicer::new(8, 2);
        for m in [0u32, 1, 37, 128, 255] {
            let slices = s.slice(m);
            let results: Vec<u64> = slices.iter().map(|&c| c as u64).collect();
            assert_eq!(s.recombine(&results), m as u64);
        }
    }

    #[test]
    fn recombine_is_linear_over_dot_products() {
        // Slicing weights, computing per-slice dot products with inputs and
        // recombining equals the direct dot product.
        let s = BitSlicer::new(8, 2);
        let weights = [200u32, 5, 77, 130];
        let inputs = [1u64, 0, 1, 1];
        let direct: u64 = weights
            .iter()
            .zip(&inputs)
            .map(|(&w, &x)| w as u64 * x)
            .sum();
        let mut per_slice = vec![0u64; s.cells_per_weight()];
        for (&w, &x) in weights.iter().zip(&inputs) {
            for (k, &c) in s.slice(w).iter().enumerate() {
                per_slice[k] += c as u64 * x;
            }
        }
        assert_eq!(s.recombine(&per_slice), direct);
    }

    #[test]
    fn uneven_division_rounds_up() {
        let s = BitSlicer::new(7, 2);
        assert_eq!(s.cells_per_weight(), 4);
        let slices = s.slice(0b1111111);
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0], 0b01); // top slice holds the odd bit
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_magnitude_rejected() {
        BitSlicer::new(4, 2).slice(16);
    }

    #[test]
    fn fits_checks_cell_spec() {
        let s = BitSlicer::new(8, 2);
        assert!(s.fits(&CellSpec::paper_2bit()));
        assert!(!s.fits(&CellSpec::new(4, 1.0, 61.0)));
    }
}
