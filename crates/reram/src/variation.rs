//! Device non-idealities: log-normal conductance variation and stuck-at
//! faults (paper §V-E).

use forms_rng::Rng;
use forms_rng::{Distribution, LogNormal};

use crate::Crossbar;

/// Multiplicative log-normal device variation: each conductance is
/// multiplied by `exp(N(mu, sigma))` — the model of paper ref. \[82\], with
/// the paper's Table VI evaluation at `mu = 0, sigma = 0.1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormalVariation {
    mu: f64,
    sigma: f64,
}

impl LogNormalVariation {
    /// Creates a variation model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        Self { mu, sigma }
    }

    /// The paper's evaluation point: mean 0, standard deviation 0.1.
    pub fn paper() -> Self {
        Self::new(0.0, 0.1)
    }

    /// Log-mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-standard-deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one multiplicative factor.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mu.exp();
        }
        LogNormal::new(self.mu, self.sigma)
            .expect("validated parameters")
            .sample(rng)
    }

    /// Applies variation to every cell of a crossbar, in place, and
    /// commits the writes so the packed read paths see them immediately.
    pub fn apply<R: Rng + ?Sized>(&self, xbar: &mut Crossbar, rng: &mut R) {
        for g in xbar.conductances_mut() {
            *g *= self.sample(rng);
        }
        xbar.commit_writes();
    }

    /// Applies variation to a weight value directly (the software-level
    /// equivalent used for whole-network robustness sweeps, where mapping
    /// every layer through physical arrays would be needlessly slow).
    pub fn perturb_weight<R: Rng + ?Sized>(&self, weight: f32, rng: &mut R) -> f32 {
        weight * self.sample(rng) as f32
    }
}

/// The failure mode of a stuck cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StuckAtKind {
    /// Stuck at the lowest conductance (stuck-at-0, open device).
    Low,
    /// Stuck at the highest conductance (stuck-at-1, shorted device).
    High,
}

/// Random stuck-at fault injection with a given cell failure rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StuckAtFault {
    rate: f64,
    kind: StuckAtKind,
}

impl StuckAtFault {
    /// Creates a fault injector.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `\[0, 1\]`.
    pub fn new(rate: f64, kind: StuckAtKind) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        Self { rate, kind }
    }

    /// Failure rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Injects faults into a crossbar and commits the writes; returns the
    /// number of cells hit.
    pub fn apply<R: Rng + ?Sized>(&self, xbar: &mut Crossbar, rng: &mut R) -> usize {
        let (g_min, g_max) = (xbar.spec().g_min(), xbar.spec().g_max());
        let target = match self.kind {
            StuckAtKind::Low => g_min,
            StuckAtKind::High => g_max,
        };
        let mut hits = 0;
        for g in xbar.conductances_mut() {
            if rng.gen_bool(self.rate) {
                *g = target;
                hits += 1;
            }
        }
        xbar.commit_writes();
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellSpec;
    use forms_rng::StdRng;

    #[test]
    fn zero_sigma_is_deterministic_identity() {
        let v = LogNormalVariation::new(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(v.sample(&mut rng), 1.0);
        assert_eq!(v.perturb_weight(0.7, &mut rng), 0.7);
    }

    #[test]
    fn samples_have_expected_log_statistics() {
        let v = LogNormalVariation::paper();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let logs: Vec<f64> = (0..n).map(|_| v.sample(&mut rng).ln()).collect();
        let mean = logs.iter().sum::<f64>() / n as f64;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "log mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "log std {}", var.sqrt());
    }

    #[test]
    fn variation_perturbs_conductances() {
        let mut xbar = Crossbar::new(8, 8, CellSpec::paper_2bit());
        xbar.program_codes(&[2; 64]);
        let before = xbar.conductances().to_vec();
        let mut rng = StdRng::seed_from_u64(2);
        LogNormalVariation::paper().apply(&mut xbar, &mut rng);
        let changed = xbar
            .conductances()
            .iter()
            .zip(&before)
            .filter(|(a, b)| (**a - **b).abs() > 1e-12)
            .count();
        assert_eq!(changed, 64);
        // Small sigma: most cells still read back their original code.
        let same_code = (0..8)
            .flat_map(|r| (0..8).map(move |c| (r, c)))
            .filter(|&(r, c)| xbar.read_cell(r, c) == 2)
            .count();
        assert!(same_code > 48, "variation too destructive: {same_code}/64");
    }

    #[test]
    fn stuck_at_rate_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = CellSpec::paper_2bit();
        let mut xbar = Crossbar::new(4, 4, spec);
        xbar.program_codes(&[1; 16]);
        assert_eq!(
            StuckAtFault::new(0.0, StuckAtKind::High).apply(&mut xbar, &mut rng),
            0
        );
        assert_eq!(
            StuckAtFault::new(1.0, StuckAtKind::High).apply(&mut xbar, &mut rng),
            16
        );
        assert!(xbar.conductances().iter().all(|&g| g == spec.g_max()));
    }

    #[test]
    fn stuck_low_reads_as_code_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xbar = Crossbar::new(2, 2, CellSpec::paper_2bit());
        xbar.program_codes(&[3; 4]);
        StuckAtFault::new(1.0, StuckAtKind::Low).apply(&mut xbar, &mut rng);
        assert_eq!(xbar.read_cell(0, 0), 0);
    }
}
