//! Data converter transfer functions.

use crate::CellSpec;

/// A 1-bit DAC: maps an input bit to a read voltage (paper §IV, "the output
/// of DAC becomes the analog input of the ReRAM crossbars"; FORMS and ISAAC
/// both use 1-bit DACs and feed inputs bit-serially).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dac {
    v_read: f64,
}

impl Dac {
    /// Creates a DAC with the given read voltage (volts).
    ///
    /// # Panics
    ///
    /// Panics if `v_read` is not positive.
    pub fn new(v_read: f64) -> Self {
        assert!(v_read > 0.0, "read voltage must be positive");
        Self { v_read }
    }

    /// The read voltage.
    pub fn v_read(&self) -> f64 {
        self.v_read
    }

    /// Drive voltage for one input bit, normalized to code units (1.0 for a
    /// set bit so that crossbar currents stay in integer code units).
    pub fn drive(&self, bit: bool) -> f64 {
        if bit {
            1.0
        } else {
            0.0
        }
    }
}

impl Default for Dac {
    fn default() -> Self {
        Self::new(0.3)
    }
}

/// An ADC quantizing a column current (in code units) to an output code,
/// saturating at full scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adc {
    bits: u32,
    full_scale: f64,
}

impl Adc {
    /// Creates an ADC with `bits` resolution over `full_scale` code units.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 16, or `full_scale` is not positive.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!((1..=16).contains(&bits), "ADC bits must be in 1..=16");
        assert!(full_scale > 0.0, "full scale must be positive");
        Self { bits, full_scale }
    }

    /// An ADC sized for a `fragment_rows`-row fragment of `spec` cells:
    /// exactly enough resolution and range to convert the fragment's
    /// largest possible accumulated value,
    /// `fragment_rows * (2^cell_bits - 1)`, *losslessly*. Resolution is
    /// clamped to the physically buildable `1..=16` bits, so absurdly
    /// large fragments saturate at 16 bits rather than panicking.
    ///
    /// This is the per-layer ADC of a precision plan: a layer mapped at a
    /// smaller fragment (or narrower cells) gets a cheaper converter.
    pub fn for_fragment(fragment_rows: usize, spec: &CellSpec) -> Self {
        let max = (fragment_rows as u64 * spec.max_code() as u64).max(1);
        let bits = (64 - max.leading_zeros()).clamp(1, 16);
        // Full scale sits on the top code so each ADC level is exactly one
        // code unit — integer inputs convert without rounding error.
        Self::new(bits, ((1u64 << bits) - 1) as f64)
    }

    /// Alias of [`for_fragment`](Self::for_fragment) kept for call sites
    /// that predate the precision-plan naming.
    pub fn ideal_for(fragment_rows: usize, spec: &CellSpec) -> Self {
        Self::for_fragment(fragment_rows, spec)
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale input in code units.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Number of output levels.
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Converts a current in code units to an output code, rounding to the
    /// nearest level and saturating at full scale. `spec` is accepted for
    /// interface symmetry with the crossbar (code units are defined by the
    /// cell spec).
    #[inline]
    pub fn convert(&self, current: f64, _spec: &CellSpec) -> u32 {
        let max_code = (self.levels() - 1) as f64;
        let code = (current / self.full_scale * max_code).round();
        code.clamp(0.0, max_code) as u32
    }

    /// The value (in code units) an output code represents.
    pub fn reconstruct(&self, code: u32) -> f64 {
        code as f64 * self.full_scale / (self.levels() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_adc_is_lossless_for_fragment() {
        let spec = CellSpec::paper_2bit();
        let adc = Adc::ideal_for(8, &spec);
        // Max value 8 × 3 = 24 → needs 5 bits.
        assert_eq!(adc.bits(), 5);
        for v in 0..=24u32 {
            assert_eq!(adc.convert(v as f64, &spec), v);
            assert!((adc.reconstruct(adc.convert(v as f64, &spec)) - v as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn adc_saturates_at_full_scale() {
        let spec = CellSpec::paper_2bit();
        let adc = Adc::new(4, 15.0);
        assert_eq!(adc.convert(100.0, &spec), 15);
        assert_eq!(adc.convert(-5.0, &spec), 0);
    }

    #[test]
    fn adc_rounds_to_nearest_level() {
        let spec = CellSpec::paper_2bit();
        let adc = Adc::new(4, 15.0);
        assert_eq!(adc.convert(7.4, &spec), 7);
        assert_eq!(adc.convert(7.6, &spec), 8);
    }

    #[test]
    fn underresolved_adc_loses_information() {
        // A 4-bit ADC over a 24-unit range cannot represent all 25 values.
        let spec = CellSpec::paper_2bit();
        let adc = Adc::new(4, 24.0);
        let distinct: std::collections::HashSet<u32> =
            (0..=24u32).map(|v| adc.convert(v as f64, &spec)).collect();
        assert!(distinct.len() < 25);
    }

    #[test]
    fn dac_drive_levels() {
        let dac = Dac::default();
        assert_eq!(dac.drive(true), 1.0);
        assert_eq!(dac.drive(false), 0.0);
    }

    #[test]
    fn ideal_for_single_row() {
        let spec = CellSpec::new(1, 1.0, 2.0);
        let adc = Adc::ideal_for(1, &spec);
        assert_eq!(adc.bits(), 1);
    }

    #[test]
    fn for_fragment_clamps_resolution_to_buildable_range() {
        // Tiny fragment: a single 1-bit cell needs only the 1-bit floor.
        let narrow = CellSpec::new(1, 1.0, 2.0);
        assert_eq!(Adc::for_fragment(1, &narrow).bits(), 1);
        // Huge fragment: 2^20 rows of 2-bit cells would want 22 bits;
        // the converter saturates at the 16-bit ceiling instead.
        let spec = CellSpec::paper_2bit();
        let adc = Adc::for_fragment(1 << 20, &spec);
        assert_eq!(adc.bits(), 16);
        assert_eq!(adc.full_scale(), ((1u64 << 16) - 1) as f64);
        // And the alias stays in lockstep.
        assert_eq!(Adc::ideal_for(1 << 20, &spec), adc);
    }
}
