//! VTEAM-inspired device write dynamics (paper ref. \[71\]).
//!
//! VTEAM models a voltage-controlled memristor whose internal state `w`
//! (normalized to `\[0, 1\]` here) only moves when the applied voltage
//! exceeds a polarity-dependent threshold, with a rate
//! `k · (v/v_th − 1)^α`. That threshold behaviour is what makes multi-level
//! programming with discrete pulses possible, and is all the architecture
//! level needs from the SPICE model.

/// VTEAM model parameters (simplified, normalized state).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VteamParams {
    /// SET (conductance-increasing) threshold voltage, positive volts.
    pub v_on: f64,
    /// RESET (conductance-decreasing) threshold voltage, positive volts
    /// (applied with negative polarity).
    pub v_off: f64,
    /// SET rate constant (state units per second at 2× threshold).
    pub k_on: f64,
    /// RESET rate constant.
    pub k_off: f64,
    /// SET nonlinearity exponent.
    pub alpha_on: f64,
    /// RESET nonlinearity exponent.
    pub alpha_off: f64,
}

impl Default for VteamParams {
    fn default() -> Self {
        // Magnitudes in the range of the VTEAM paper's Pt/HfO2/Ti fits.
        Self {
            v_on: 1.0,
            v_off: 0.5,
            k_on: 5e3,
            k_off: 5e3,
            alpha_on: 3.0,
            alpha_off: 3.0,
        }
    }
}

/// One memristive device with normalized internal state in `\[0, 1\]`
/// (0 = lowest conductance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VteamDevice {
    params: VteamParams,
    state: f64,
}

impl VteamDevice {
    /// Creates a device at the given initial state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is outside `\[0, 1\]`.
    pub fn new(params: VteamParams, state: f64) -> Self {
        assert!((0.0..=1.0).contains(&state), "state must be in [0, 1]");
        Self { params, state }
    }

    /// Current normalized state.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Conductance for a cell range, linear in state.
    pub fn conductance(&self, g_min: f64, g_max: f64) -> f64 {
        g_min + self.state * (g_max - g_min)
    }

    /// Applies a voltage pulse of `duration_s` seconds. Positive voltage
    /// above `v_on` moves the state up; negative voltage below `−v_off`
    /// moves it down; anything between the thresholds leaves the device
    /// untouched (non-destructive reads).
    pub fn apply_pulse(&mut self, voltage: f64, duration_s: f64) {
        assert!(duration_s >= 0.0, "duration cannot be negative");
        let p = self.params;
        let rate = if voltage >= p.v_on {
            p.k_on * (voltage / p.v_on - 1.0).powf(p.alpha_on)
        } else if voltage <= -p.v_off {
            -p.k_off * (-voltage / p.v_off - 1.0).powf(p.alpha_off)
        } else {
            0.0
        };
        self.state = (self.state + rate * duration_s).clamp(0.0, 1.0);
    }

    /// Programs the device toward a target state with bounded write-verify
    /// pulses; returns the number of pulses used. This is the behavioural
    /// equivalent of the write-verify loops real ReRAM macros use.
    pub fn program_to(&mut self, target: f64, tolerance: f64, max_pulses: usize) -> usize {
        assert!((0.0..=1.0).contains(&target), "target must be in [0, 1]");
        assert!(tolerance > 0.0, "tolerance must be positive");
        let pulse_s = 1e-6;
        for pulse in 0..max_pulses {
            let err = target - self.state;
            if err.abs() <= tolerance {
                return pulse;
            }
            // Scale drive with remaining error for convergence.
            let v = if err > 0.0 {
                self.params.v_on * (1.2 + err)
            } else {
                -self.params.v_off * (1.2 - err)
            };
            self.apply_pulse(v, pulse_s);
        }
        max_pulses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(state: f64) -> VteamDevice {
        VteamDevice::new(VteamParams::default(), state)
    }

    #[test]
    fn sub_threshold_voltage_does_not_disturb() {
        let mut d = device(0.5);
        d.apply_pulse(0.3, 1.0); // read-level voltage, long exposure
        d.apply_pulse(-0.3, 1.0);
        assert_eq!(d.state(), 0.5);
    }

    #[test]
    fn set_pulse_increases_state() {
        let mut d = device(0.2);
        d.apply_pulse(2.0, 1e-4);
        assert!(d.state() > 0.2);
    }

    #[test]
    fn reset_pulse_decreases_state() {
        let mut d = device(0.8);
        d.apply_pulse(-1.5, 1e-4);
        assert!(d.state() < 0.8);
    }

    #[test]
    fn state_saturates_at_bounds() {
        let mut d = device(0.9);
        d.apply_pulse(3.0, 1.0);
        assert_eq!(d.state(), 1.0);
        d.apply_pulse(-3.0, 1.0);
        assert_eq!(d.state(), 0.0);
    }

    #[test]
    fn stronger_pulses_move_state_faster() {
        let mut weak = device(0.0);
        let mut strong = device(0.0);
        weak.apply_pulse(1.5, 1e-5);
        strong.apply_pulse(2.5, 1e-5);
        assert!(strong.state() > weak.state());
    }

    #[test]
    fn write_verify_converges() {
        let mut d = device(0.0);
        let pulses = d.program_to(0.67, 0.01, 10_000);
        assert!((d.state() - 0.67).abs() <= 0.01, "state {}", d.state());
        assert!(pulses < 10_000, "did not converge");
    }

    #[test]
    fn conductance_tracks_state_linearly() {
        let d = device(0.25);
        assert!((d.conductance(1.0, 61.0) - 16.0).abs() < 1e-9);
    }
}
