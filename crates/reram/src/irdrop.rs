//! IR-drop (wire-resistance) modelling.
//!
//! In a real crossbar the word/bit lines have finite resistance, so cells
//! far from the drivers see a reduced effective voltage and contribute less
//! current than the ideal `G·V`. This is one of the "non-idealities" the
//! paper argues fine-grained sub-arrays tolerate better (§II-C): a fragment
//! only accumulates over a few rows, so the error it can pick up is
//! bounded.
//!
//! The model here is the widely used first-order approximation: the
//! effective read voltage decays with the resistive divider formed by the
//! accumulated line resistance and the cell resistance, cell by cell along
//! the line.

use std::ops::Range;

use crate::Crossbar;

/// First-order IR-drop model with per-segment line resistance in ohms and
/// read voltage in volts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IrDropModel {
    wire_ohm_per_cell: f64,
}

impl IrDropModel {
    /// Creates a model with the given wire resistance per cell segment.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is negative or not finite.
    pub fn new(wire_ohm_per_cell: f64) -> Self {
        assert!(
            wire_ohm_per_cell.is_finite() && wire_ohm_per_cell >= 0.0,
            "wire resistance must be non-negative"
        );
        Self { wire_ohm_per_cell }
    }

    /// A typical 2.5 Ω/segment copper line (values in this range are used
    /// across the crossbar literature).
    pub fn typical() -> Self {
        Self::new(2.5)
    }

    /// An ideal (zero-resistance) line.
    pub fn ideal() -> Self {
        Self::new(0.0)
    }

    /// Wire resistance per cell segment.
    pub fn wire_ohm_per_cell(&self) -> f64 {
        self.wire_ohm_per_cell
    }

    /// The attenuation factor seen by the cell at `distance` segments from
    /// the driver when the line carries cells of conductance `g_us` µS:
    /// each segment forms a divider `R_cell / (R_cell + d · R_wire)`.
    pub fn attenuation(&self, distance: usize, g_us: f64) -> f64 {
        if self.wire_ohm_per_cell == 0.0 || g_us <= 0.0 {
            return 1.0;
        }
        let r_cell = 1.0 / (g_us * 1e-6); // ohms
        let r_line = self.wire_ohm_per_cell * distance as f64;
        r_cell / (r_cell + r_line)
    }

    /// Column currents of a crossbar over a row window with IR drop along
    /// the bit line applied (the column wire accumulates resistance toward
    /// the ADC at the bottom of the window).
    ///
    /// Returns currents in code units, like
    /// [`Crossbar::column_currents`] — the ideal result multiplied per-cell
    /// by the attenuation of its position.
    ///
    /// # Panics
    ///
    /// Panics as [`Crossbar::column_currents`] does.
    #[allow(clippy::needless_range_loop)] // several arrays are co-indexed
    pub fn column_currents(&self, xbar: &Crossbar, inputs: &[f64], rows: Range<usize>) -> Vec<f64> {
        assert!(rows.end <= xbar.rows(), "row window out of bounds");
        assert_eq!(inputs.len(), rows.len(), "input length mismatch");
        let spec = *xbar.spec();
        let step = spec.g_step();
        let g_min = spec.g_min();
        let mut currents = vec![0.0f64; xbar.cols()];
        for (i, r) in rows.clone().enumerate() {
            let v = inputs[i];
            if v == 0.0 {
                continue;
            }
            for c in 0..xbar.cols() {
                let g = xbar.conductances()[r * xbar.cols() + c];
                // Distance along the bit line = position within the window.
                let att = self.attenuation(i, g);
                currents[c] += (g - g_min) / step * v * att;
            }
        }
        currents
    }

    /// Worst-case relative error of a `window`-row accumulation with all
    /// cells at `g_us` µS — the analytic bound behind "fine-grained is less
    /// susceptible": the error grows with the window length.
    pub fn worst_case_relative_error(&self, window: usize, g_us: f64) -> f64 {
        if window == 0 {
            return 0.0;
        }
        let ideal = window as f64;
        let actual: f64 = (0..window).map(|d| self.attenuation(d, g_us)).sum();
        (ideal - actual) / ideal
    }
}

impl Default for IrDropModel {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellSpec;

    #[test]
    fn ideal_wire_changes_nothing() {
        let mut xbar = Crossbar::new(8, 4, CellSpec::paper_2bit());
        xbar.program_codes(&[2; 32]);
        let inputs = [1.0; 8];
        let ideal = xbar.column_currents(&inputs, 0..8);
        let dropped = IrDropModel::ideal().column_currents(&xbar, &inputs, 0..8);
        assert_eq!(ideal, dropped);
    }

    #[test]
    fn attenuation_decreases_with_distance() {
        let m = IrDropModel::typical();
        let a0 = m.attenuation(0, 61.0);
        let a64 = m.attenuation(64, 61.0);
        let a127 = m.attenuation(127, 61.0);
        assert_eq!(a0, 1.0);
        assert!(a64 < a0 && a127 < a64);
    }

    #[test]
    fn drop_reduces_currents() {
        let mut xbar = Crossbar::new(128, 2, CellSpec::paper_2bit());
        xbar.program_codes(&[3; 256]);
        let inputs = vec![1.0; 128];
        let ideal = xbar.column_currents(&inputs, 0..128);
        let dropped = IrDropModel::typical().column_currents(&xbar, &inputs, 0..128);
        assert!(dropped[0] < ideal[0]);
        assert!(dropped[0] > 0.9 * ideal[0], "drop unreasonably large");
    }

    #[test]
    fn fine_grained_windows_suffer_less() {
        // The paper's §II-C claim in analytic form: an 8-row fragment's
        // worst-case IR-drop error is far below a 128-row column's.
        let m = IrDropModel::typical();
        let fine = m.worst_case_relative_error(8, 61.0);
        let coarse = m.worst_case_relative_error(128, 61.0);
        assert!(fine < coarse / 4.0, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn zero_window_has_no_error() {
        assert_eq!(
            IrDropModel::typical().worst_case_relative_error(0, 61.0),
            0.0
        );
    }
}
