//! Packed bit-plane input drive.
//!
//! The bit-serial input path feeds one *bit plane* of the fragment's input
//! codes per shift cycle. The naive representation — one `Vec<bool>` per
//! plane — costs an allocation per plane per fragment per MVM and dominates
//! simulator throughput. Packing every plane into `u64` words instead makes
//! a plane a handful of machine words: building the planes is one pass over
//! the codes, driving a plane is a set-bit scan, and nothing is allocated
//! on the MVM hot path (the caller reuses one scratch buffer).

/// Words of `u64` needed to hold one packed bit plane of `len` inputs.
pub const fn plane_words(len: usize) -> usize {
    len.div_ceil(64)
}

/// Packs the bit planes of `codes` into `u64` masks, LSB plane first.
///
/// `out` is resized to `planes × plane_words(codes.len())` and overwritten;
/// plane `p` occupies `out[p * words .. (p + 1) * words]` with bit `i`
/// (word `i / 64`, bit `i % 64`) set iff bit `p` of `codes[i]` is set.
/// Planes at or above the highest effective bit are all-zero words.
///
/// The pass is O(`codes.len()` + set bits): each code scatters its set bits
/// directly into the plane masks.
pub fn pack_bit_planes(codes: &[u32], planes: u32, out: &mut Vec<u64>) -> usize {
    let words = plane_words(codes.len());
    out.clear();
    out.resize(planes as usize * words, 0);
    let keep = if planes >= 32 {
        u32::MAX
    } else {
        (1u32 << planes) - 1
    };
    for (i, &code) in codes.iter().enumerate() {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let mut rest = code & keep;
        while rest != 0 {
            let p = rest.trailing_zeros() as usize;
            out[p * words + word] |= bit;
            rest &= rest - 1;
        }
    }
    words
}

/// Visits the set-bit indices of one packed plane in ascending order.
#[inline]
pub fn for_each_set_bit(mask: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in mask.iter().enumerate() {
        let mut rest = word;
        while rest != 0 {
            f(w * 64 + rest.trailing_zeros() as usize);
            rest &= rest - 1;
        }
    }
}

/// Number of set bits in one packed plane (the plane's input `1`s).
pub fn plane_ones(mask: &[u64]) -> u64 {
    mask.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_planes_match_shifted_bits() {
        let codes = [0b1011u32, 0b0110, 0, 0b1000_0001, u16::MAX as u32];
        let mut masks = Vec::new();
        let words = pack_bit_planes(&codes, 16, &mut masks);
        assert_eq!(words, 1);
        for (p, &mask) in masks.iter().enumerate() {
            for (i, &c) in codes.iter().enumerate() {
                let want = (c >> p) & 1 == 1;
                let got = mask & (1 << i) != 0;
                assert_eq!(got, want, "plane {p} input {i}");
            }
        }
    }

    #[test]
    fn packing_spans_multiple_words() {
        let codes: Vec<u32> = (0..130).map(|i| (i % 2) as u32).collect();
        let mut masks = Vec::new();
        let words = pack_bit_planes(&codes, 4, &mut masks);
        assert_eq!(words, 3);
        assert_eq!(masks.len(), 4 * 3);
        // Plane 0 holds the odd indices; planes 1..4 are empty.
        assert_eq!(plane_ones(&masks[0..3]), 65);
        assert_eq!(plane_ones(&masks[3..]), 0);
        let mut seen = Vec::new();
        for_each_set_bit(&masks[0..3], |i| seen.push(i));
        assert_eq!(seen, (0..130).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn planes_above_the_width_are_dropped() {
        let codes = [u32::MAX];
        let mut masks = Vec::new();
        pack_bit_planes(&codes, 3, &mut masks);
        assert_eq!(masks, vec![1, 1, 1]);
    }

    #[test]
    fn empty_fragment_packs_to_nothing() {
        let mut masks = vec![7u64; 3];
        let words = pack_bit_planes(&[], 8, &mut masks);
        assert_eq!(words, 0);
        assert!(masks.is_empty());
    }
}
