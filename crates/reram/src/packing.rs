//! Packed bit-plane input drive.
//!
//! The bit-serial input path feeds one *bit plane* of the fragment's input
//! codes per shift cycle. The naive representation — one `Vec<bool>` per
//! plane — costs an allocation per plane per fragment per MVM and dominates
//! simulator throughput. Packing every plane into `u64` words instead makes
//! a plane a handful of machine words: building the planes is one pass over
//! the codes, driving a plane is a set-bit scan, and nothing is allocated
//! on the MVM hot path (the caller reuses one scratch buffer).

/// Words of `u64` needed to hold one packed bit plane of `len` inputs.
pub const fn plane_words(len: usize) -> usize {
    len.div_ceil(64)
}

/// Packs the bit planes of `codes` into `u64` masks, LSB plane first.
///
/// `out` is resized to `planes × plane_words(codes.len())` and overwritten;
/// plane `p` occupies `out[p * words .. (p + 1) * words]` with bit `i`
/// (word `i / 64`, bit `i % 64`) set iff bit `p` of `codes[i]` is set.
/// Planes at or above the highest effective bit are all-zero words.
///
/// The pass is O(`codes.len()` + set bits): each code scatters its set bits
/// directly into the plane masks.
pub fn pack_bit_planes(codes: &[u32], planes: u32, out: &mut Vec<u64>) -> usize {
    let words = plane_words(codes.len());
    out.clear();
    out.resize(planes as usize * words, 0);
    let keep = if planes >= 32 {
        u32::MAX
    } else {
        (1u32 << planes) - 1
    };
    for (i, &code) in codes.iter().enumerate() {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let mut rest = code & keep;
        while rest != 0 {
            let p = rest.trailing_zeros() as usize;
            out[p * words + word] |= bit;
            rest &= rest - 1;
        }
    }
    words
}

/// Packs the bit planes of a *tile* of input vectors in one pass.
///
/// `codes` holds `samples` consecutive vectors of `codes.len() / samples`
/// inputs each (sample-major). The output layout is sample-major too:
/// sample `s`, plane `p` occupies
/// `out[(s * planes + p) * words .. (s * planes + p + 1) * words]`, each
/// identical to what [`pack_bit_planes`] produces for that sample alone.
/// Returns the words per plane.
///
/// This is the batched kernels' front end: one tile of B vectors is packed
/// once, then every weight fragment/dequant window is swept once per tile
/// instead of once per sample.
///
/// # Panics
///
/// Panics if `codes.len()` is not a multiple of `samples` (for
/// `samples > 0`).
pub fn pack_tile_bit_planes(
    codes: &[u32],
    samples: usize,
    planes: u32,
    out: &mut Vec<u64>,
) -> usize {
    if samples == 0 {
        out.clear();
        return 0;
    }
    assert!(
        codes.len().is_multiple_of(samples),
        "tile codes must hold whole samples ({} codes over {samples} samples)",
        codes.len(),
    );
    let len = codes.len() / samples;
    let words = plane_words(len);
    let stride = planes as usize * words;
    out.clear();
    out.resize(samples * stride, 0);
    let keep = if planes >= 32 {
        u32::MAX
    } else {
        (1u32 << planes) - 1
    };
    for (s, sample) in codes.chunks_exact(len).enumerate() {
        let base = s * stride;
        for (i, &code) in sample.iter().enumerate() {
            let (word, bit) = (i / 64, 1u64 << (i % 64));
            let mut rest = code & keep;
            while rest != 0 {
                let p = rest.trailing_zeros() as usize;
                out[base + p * words + word] |= bit;
                rest &= rest - 1;
            }
        }
    }
    words
}

/// Whether one packed plane drives no input at all — the batched kernels
/// skip such planes outright (their column currents are identically zero).
#[inline]
pub fn plane_is_zero(mask: &[u64]) -> bool {
    mask.iter().all(|&w| w == 0)
}

/// Visits the set-bit indices of one packed plane in ascending order.
#[inline]
pub fn for_each_set_bit(mask: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in mask.iter().enumerate() {
        let mut rest = word;
        while rest != 0 {
            f(w * 64 + rest.trailing_zeros() as usize);
            rest &= rest - 1;
        }
    }
}

/// Number of set bits in one packed plane (the plane's input `1`s).
pub fn plane_ones(mask: &[u64]) -> u64 {
    mask.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_planes_match_shifted_bits() {
        let codes = [0b1011u32, 0b0110, 0, 0b1000_0001, u16::MAX as u32];
        let mut masks = Vec::new();
        let words = pack_bit_planes(&codes, 16, &mut masks);
        assert_eq!(words, 1);
        for (p, &mask) in masks.iter().enumerate() {
            for (i, &c) in codes.iter().enumerate() {
                let want = (c >> p) & 1 == 1;
                let got = mask & (1 << i) != 0;
                assert_eq!(got, want, "plane {p} input {i}");
            }
        }
    }

    #[test]
    fn packing_spans_multiple_words() {
        let codes: Vec<u32> = (0..130).map(|i| (i % 2) as u32).collect();
        let mut masks = Vec::new();
        let words = pack_bit_planes(&codes, 4, &mut masks);
        assert_eq!(words, 3);
        assert_eq!(masks.len(), 4 * 3);
        // Plane 0 holds the odd indices; planes 1..4 are empty.
        assert_eq!(plane_ones(&masks[0..3]), 65);
        assert_eq!(plane_ones(&masks[3..]), 0);
        let mut seen = Vec::new();
        for_each_set_bit(&masks[0..3], |i| seen.push(i));
        assert_eq!(seen, (0..130).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn planes_above_the_width_are_dropped() {
        let codes = [u32::MAX];
        let mut masks = Vec::new();
        pack_bit_planes(&codes, 3, &mut masks);
        assert_eq!(masks, vec![1, 1, 1]);
    }

    #[test]
    fn tile_packing_matches_per_sample_packing() {
        let tile: Vec<u32> = (0..3u32 * 70)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        let mut packed = Vec::new();
        let words = pack_tile_bit_planes(&tile, 3, 10, &mut packed);
        assert_eq!(words, plane_words(70));
        let stride = 10 * words;
        for (s, sample) in tile.chunks_exact(70).enumerate() {
            let mut solo = Vec::new();
            assert_eq!(pack_bit_planes(sample, 10, &mut solo), words);
            assert_eq!(&packed[s * stride..(s + 1) * stride], solo.as_slice());
        }
    }

    #[test]
    fn tile_packing_edge_cases() {
        let mut out = vec![5u64; 4];
        assert_eq!(pack_tile_bit_planes(&[], 0, 8, &mut out), 0);
        assert!(out.is_empty());
        // One sample degenerates to plain packing.
        let codes = [0b101u32, 0b011];
        let mut tile = Vec::new();
        let mut solo = Vec::new();
        pack_tile_bit_planes(&codes, 1, 3, &mut tile);
        pack_bit_planes(&codes, 3, &mut solo);
        assert_eq!(tile, solo);
        assert!(plane_is_zero(&[0, 0]));
        assert!(!plane_is_zero(&[0, 4]));
    }

    #[test]
    fn empty_fragment_packs_to_nothing() {
        let mut masks = vec![7u64; 3];
        let words = pack_bit_planes(&[], 8, &mut masks);
        assert_eq!(words, 0);
        assert!(masks.is_empty());
    }
}
