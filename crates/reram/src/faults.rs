//! Seeded fault campaigns: reproducible stuck-at + drift injection into
//! already-mapped crossbars.
//!
//! A [`FaultCampaign`] is a *value* describing a device-degradation
//! scenario — stuck-at-low/high cell rates and a log-normal conductance
//! drift sigma — plus the seed that makes it replayable. Applying the same
//! campaign with the same salt to the same crossbar always flips the same
//! cells, so a fault sweep is a pure function of `(campaign, salt)` and
//! any observed accuracy/availability curve can be reproduced exactly.
//!
//! Unlike the lower-level [`StuckAtFault`](crate::StuckAtFault) /
//! [`LogNormalVariation`](crate::LogNormalVariation) helpers (which take a
//! caller-owned RNG), `apply` derives its RNG from the campaign seed and
//! the caller's salt and **commits the writes** before returning — the
//! packed bit-plane read paths see the faults immediately and can never
//! serve a stale hoisted table.

use forms_rng::StdRng;
use forms_rng::{Distribution, LogNormal, Rng};

use crate::Crossbar;

/// Mixes a salt component into a seed (splitmix-style odd constant).
pub(crate) fn mix_salt(seed: u64, salt: u64) -> u64 {
    seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A seeded, replayable device-fault scenario.
///
/// Per cell, drift is applied first (multiplicative `exp(N(0, sigma))`),
/// then one uniform draw decides stuck-ness: `u < stuck_low_rate` pins the
/// cell at `g_min`, `u < stuck_low_rate + stuck_high_rate` at `g_max`
/// (stuck cells override drift — a dead device has no usable conductance
/// to drift).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultCampaign {
    /// Base seed; combined with the per-application salt.
    pub seed: u64,
    /// Probability a cell is stuck at `g_min` (open device).
    pub stuck_low_rate: f64,
    /// Probability a cell is stuck at `g_max` (shorted device).
    pub stuck_high_rate: f64,
    /// Log-normal drift sigma applied to every non-stuck cell
    /// (0 disables drift).
    pub drift_sigma: f64,
}

impl FaultCampaign {
    /// A pure stuck-at campaign.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]` or they sum past 1.
    pub fn stuck_at(seed: u64, stuck_low_rate: f64, stuck_high_rate: f64) -> Self {
        Self::mixed(seed, stuck_low_rate, stuck_high_rate, 0.0)
    }

    /// A pure conductance-drift campaign.
    ///
    /// # Panics
    ///
    /// Panics if `drift_sigma` is negative or not finite.
    pub fn drift(seed: u64, drift_sigma: f64) -> Self {
        Self::mixed(seed, 0.0, 0.0, drift_sigma)
    }

    /// A combined stuck-at + drift campaign.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 1]`, the rates sum past 1, or
    /// `drift_sigma` is negative or not finite.
    pub fn mixed(seed: u64, stuck_low_rate: f64, stuck_high_rate: f64, drift_sigma: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stuck_low_rate) && (0.0..=1.0).contains(&stuck_high_rate),
            "stuck rates must be in [0, 1]"
        );
        assert!(
            stuck_low_rate + stuck_high_rate <= 1.0,
            "stuck rates must sum to at most 1"
        );
        assert!(
            drift_sigma.is_finite() && drift_sigma >= 0.0,
            "drift sigma must be non-negative"
        );
        Self {
            seed,
            stuck_low_rate,
            stuck_high_rate,
            drift_sigma,
        }
    }

    /// Whether this campaign perturbs nothing.
    pub fn is_noop(&self) -> bool {
        self.stuck_low_rate == 0.0 && self.stuck_high_rate == 0.0 && self.drift_sigma == 0.0
    }

    /// Injects the campaign into one crossbar and commits the writes, so
    /// the packed read paths immediately serve the faulted cells. `salt`
    /// decorrelates applications of one campaign to different arrays
    /// (layer/crossbar indices, replica ids); the same `(campaign, salt)`
    /// always produces the same faults.
    pub fn apply(&self, xbar: &mut Crossbar, salt: u64) -> FaultReport {
        let mut rng = StdRng::seed_from_u64(mix_salt(self.seed, salt));
        let (g_min, g_max) = (xbar.spec().g_min(), xbar.spec().g_max());
        let drift = (self.drift_sigma > 0.0)
            .then(|| LogNormal::new(0.0, self.drift_sigma).expect("validated sigma"));
        let mut report = FaultReport {
            cells: xbar.rows() * xbar.cols(),
            ..FaultReport::default()
        };
        if self.is_noop() {
            return report;
        }
        for g in xbar.conductances_mut() {
            let u = rng.gen::<f64>();
            if u < self.stuck_low_rate {
                *g = g_min;
                report.stuck_low += 1;
            } else if u < self.stuck_low_rate + self.stuck_high_rate {
                *g = g_max;
                report.stuck_high += 1;
            } else if let Some(d) = &drift {
                *g *= d.sample(&mut rng);
                report.drifted += 1;
            }
        }
        xbar.commit_writes();
        report
    }
}

/// Tally of one or more campaign applications.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Cells visited.
    pub cells: usize,
    /// Cells pinned at `g_min`.
    pub stuck_low: usize,
    /// Cells pinned at `g_max`.
    pub stuck_high: usize,
    /// Cells whose conductance drifted.
    pub drifted: usize,
}

impl FaultReport {
    /// Hard-faulted (stuck) cells.
    pub fn stuck(&self) -> usize {
        self.stuck_low + self.stuck_high
    }

    /// Fraction of visited cells that are stuck (0 when no cells).
    pub fn fault_density(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.stuck() as f64 / self.cells as f64
        }
    }

    /// Folds another report's tallies into this one.
    pub fn merge(&mut self, other: &FaultReport) {
        self.cells += other.cells;
        self.stuck_low += other.stuck_low;
        self.stuck_high += other.stuck_high;
        self.drifted += other.drifted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellSpec;

    fn programmed(rows: usize, cols: usize) -> Crossbar {
        let mut xb = Crossbar::new(rows, cols, CellSpec::paper_2bit());
        let codes: Vec<u32> = (0..rows * cols).map(|i| (i % 4) as u32).collect();
        xb.program_codes(&codes);
        xb
    }

    #[test]
    fn same_seed_and_salt_replays_identically() {
        let campaign = FaultCampaign::mixed(42, 0.05, 0.05, 0.1);
        let (mut a, mut b) = (programmed(16, 16), programmed(16, 16));
        let ra = campaign.apply(&mut a, 7);
        let rb = campaign.apply(&mut b, 7);
        assert_eq!(ra, rb);
        assert_eq!(a.conductances(), b.conductances());
    }

    #[test]
    fn different_salts_decorrelate() {
        let campaign = FaultCampaign::stuck_at(42, 0.2, 0.2);
        let (mut a, mut b) = (programmed(16, 16), programmed(16, 16));
        campaign.apply(&mut a, 0);
        campaign.apply(&mut b, 1);
        assert_ne!(a.conductances(), b.conductances());
    }

    #[test]
    fn stuck_cells_pin_to_rail_conductances() {
        let spec = CellSpec::paper_2bit();
        let mut xb = programmed(8, 8);
        let report = FaultCampaign::stuck_at(1, 1.0, 0.0).apply(&mut xb, 0);
        assert_eq!(report.stuck_low, 64);
        assert_eq!(report.fault_density(), 1.0);
        assert!(xb.conductances().iter().all(|&g| g == spec.g_min()));
        let report = FaultCampaign::stuck_at(1, 0.0, 1.0).apply(&mut xb, 0);
        assert_eq!(report.stuck_high, 64);
        assert!(xb.conductances().iter().all(|&g| g == spec.g_max()));
    }

    #[test]
    fn applied_campaign_is_visible_to_packed_reads() {
        let mut xb = programmed(8, 4);
        FaultCampaign::mixed(9, 0.3, 0.3, 0.2).apply(&mut xb, 3);
        assert!(!xb.is_dirty());
        // Packed and raw reads agree bitwise on the faulted array.
        let mut packed = [0.0; 4];
        xb.column_currents_packed_into(&[0xFF], 0..8, &mut packed);
        let mut raw = [0.0; 4];
        xb.column_currents_into(&[1.0; 8], 0..8, &mut raw);
        assert_eq!(packed, raw);
    }

    #[test]
    fn noop_campaign_changes_nothing() {
        let mut xb = programmed(4, 4);
        let before = xb.conductances().to_vec();
        let report = FaultCampaign::stuck_at(5, 0.0, 0.0).apply(&mut xb, 0);
        assert_eq!(report.stuck(), 0);
        assert_eq!(report.drifted, 0);
        assert_eq!(xb.conductances(), before.as_slice());
    }

    #[test]
    fn reports_merge_componentwise() {
        let mut a = FaultReport {
            cells: 10,
            stuck_low: 1,
            stuck_high: 2,
            drifted: 3,
        };
        a.merge(&FaultReport {
            cells: 6,
            stuck_low: 1,
            stuck_high: 0,
            drifted: 2,
        });
        assert_eq!(a.cells, 16);
        assert_eq!(a.stuck(), 4);
        assert_eq!(a.drifted, 5);
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overlapping_rates_rejected() {
        FaultCampaign::stuck_at(0, 0.7, 0.7);
    }
}
