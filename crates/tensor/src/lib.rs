//! # forms-tensor
//!
//! Dense tensor substrate for the FORMS (ISCA 2021) reproduction.
//!
//! The FORMS paper trains DNNs in PyTorch; this crate is the from-scratch
//! replacement for the tensor layer of that stack: shapes, dense `f32`
//! tensors, the linear algebra needed by convolutional networks (matmul,
//! im2col/col2im), weight initializers, and the fixed-point formats that the
//! accelerator front-end uses for activations and weights.
//!
//! # Example
//!
//! ```
//! use forms_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fixed;
mod init;
mod linalg;
mod shape;
mod stats;
mod tensor;

pub use fixed::{FixedPoint, FixedSpec, QuantizedTensor};
pub use init::{kaiming_uniform, uniform, xavier_uniform};
pub use linalg::{col2im, im2col, Conv2dGeometry};
pub use shape::Shape;
pub use stats::{mean, quantile, std_dev, variance};
pub use tensor::Tensor;
