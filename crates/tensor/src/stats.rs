//! Descriptive statistics over value slices, shared by the activation
//! calibration and reporting code.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population variance (0 for an empty slice).
pub fn variance(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
///
/// Used by the activation calibrators to pick robust full-scale values
/// (e.g. the 99.9th percentile) without letting a single outlier squash the
/// distribution.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let v = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-6);
        assert!((variance(&v) - 4.0).abs() < 1e-6);
        assert!((std_dev(&v) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn quantile_endpoints() {
        let v = [3.0f32, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
    }

    #[test]
    fn quantile_is_robust_to_outliers() {
        let mut v = vec![1.0f32; 999];
        v.push(1e9);
        assert_eq!(quantile(&v, 0.99), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }
}
