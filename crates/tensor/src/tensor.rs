//! Dense row-major `f32` tensors.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::Shape;

/// A dense, row-major tensor of `f32` values.
///
/// This is the workhorse value type of the whole workspace: DNN weights and
/// activations, ADMM auxiliary/dual variables, and the digital reference
/// results that the analog crossbar simulation is checked against are all
/// `Tensor`s.
///
/// # Example
///
/// ```
/// use forms_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.map(f32::abs).sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Self { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self::from_vec(data.to_vec(), &[data.len()])
    }

    /// Builds a tensor by calling `f` for every linear offset.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(shape);
        let data = (0..shape.len()).map(&mut f).collect();
        Self { shape, data }
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents, as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let new_shape = Shape::new(shape);
        assert!(
            self.shape.same_len(&new_shape),
            "cannot reshape {} ({} elements) into {} ({} elements)",
            self.shape,
            self.shape.len(),
            new_shape,
            new_shape.len()
        );
        Tensor {
            shape: new_shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + alpha * other`, the BLAS `axpy` primitive used pervasively by
    /// the optimizers and ADMM dual updates.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute value (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Squared Frobenius norm (sum of squares).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Index of the largest element (first occurrence). `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dimensions disagree ({} vs {})", k, k2);
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of both `other` and `out`.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Matrix–vector product `self · v` for a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2 or the dimensions disagree.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.shape.rank(), 2, "matvec requires a rank-2 tensor");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(
            k,
            v.len(),
            "matvec dimension mismatch ({} vs {})",
            k,
            v.len()
        );
        (0..m)
            .map(|i| {
                self.data[i * k..(i + 1) * k]
                    .iter()
                    .zip(v)
                    .map(|(&a, &b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Whether every element is within `tol` of the corresponding element of
    /// `other`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{}, {}, … {} more])",
                self.data[0],
                self.data[1],
                self.data.len() - 2
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

macro_rules! elementwise_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

elementwise_op!(Add, add, +);
elementwise_op!(Sub, sub, -);
elementwise_op!(Mul, mul, *);
elementwise_op!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5, 0.0, 3.0], &[2, 3]);
        let v = [2.0, 3.0, 4.0];
        let got = a.matvec(&v);
        let want = a.matmul(&Tensor::from_vec(v.to_vec(), &[3, 1]));
        assert_eq!(got, want.data());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[4]);
        let b = Tensor::full(&[4], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.abs_max(), 3.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.count_nonzero(), 3);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[4]);
    }

    #[test]
    fn operator_overloads() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!((&a + &b).data(), &[4.0, 6.0]);
        assert_eq!((&a - &b).data(), &[-2.0, -2.0]);
        assert_eq!((&a * &b).data(), &[3.0, 8.0]);
        assert_eq!((&b / 2.0).data(), &[1.5, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.01, 2.0], &[2]);
        assert!(a.allclose(&b, 0.02));
        assert!(!a.allclose(&b, 0.001));
    }
}
