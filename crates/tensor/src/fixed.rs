//! Fixed-point formats for bit-serial mixed-signal computation.
//!
//! FORMS feeds activations to the crossbar one bit per cycle through 1-bit
//! DACs, so the accelerator front-end needs an explicit unsigned fixed-point
//! representation of every activation: a `code` in `[0, 2^bits)` plus a
//! shared `scale`. The zero-skipping logic operates on the *codes* — its
//! whole premise (paper §IV-B) is that most codes have leading zeros.

use crate::Tensor;

/// An unsigned fixed-point format: `value = code * scale`, `code < 2^bits`.
///
/// # Example
///
/// ```
/// use forms_tensor::FixedSpec;
///
/// let spec = FixedSpec::new(8, 1.0 / 255.0);
/// assert_eq!(spec.quantize(1.0), 255);
/// assert_eq!(spec.quantize(2.0), 255); // saturates
/// assert!((spec.dequantize(128) - 0.50196).abs() < 1e-4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedSpec {
    bits: u32,
    scale: f32,
}

impl FixedSpec {
    /// Creates a format with `bits` magnitude bits and the given scale
    /// (value of the least-significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31, or if `scale` is not a
    /// positive finite number.
    pub fn new(bits: u32, scale: f32) -> Self {
        assert!(
            (1..=31).contains(&bits),
            "bits must be in 1..=31, got {bits}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive and finite, got {scale}"
        );
        Self { bits, scale }
    }

    /// Chooses the scale so that `max_value` maps to the largest code.
    ///
    /// If `max_value` is zero or negative the scale falls back to 1.0 (all
    /// codes will be zero anyway). A non-finite `max_value` — NaN or
    /// infinity leaking out of a faulted engine — yields the
    /// [`degenerate`](Self::degenerate) zero-scale spec, so every value
    /// quantizes to code 0 instead of saturating to garbage top codes.
    pub fn for_max_value(bits: u32, max_value: f32) -> Self {
        if !max_value.is_finite() {
            return Self::degenerate(bits);
        }
        let max_code = ((1u64 << bits) - 1) as f32;
        let scale = if max_value > 0.0 {
            max_value / max_code
        } else {
            1.0
        };
        Self::new(bits, scale)
    }

    /// The degenerate zero-scale format: every value quantizes to code 0
    /// and every code dequantizes to 0.0. This is the safe sink for
    /// activation tensors whose maximum is not finite; it cannot be built
    /// through [`new`](Self::new) (which rejects a zero scale).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn degenerate(bits: u32) -> Self {
        assert!(
            (1..=31).contains(&bits),
            "bits must be in 1..=31, got {bits}"
        );
        Self { bits, scale: 0.0 }
    }

    /// Whether this is the degenerate zero-scale format.
    pub fn is_degenerate(&self) -> bool {
        self.scale == 0.0
    }

    /// Number of magnitude bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Value of the least-significant bit.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Largest representable code.
    pub fn max_code(&self) -> u32 {
        ((1u64 << self.bits) - 1) as u32
    }

    /// Quantizes a non-negative value to the nearest code, saturating at the
    /// format bounds. Negative inputs clamp to 0, and the
    /// [`degenerate`](Self::degenerate) format maps everything to 0.
    pub fn quantize(&self, value: f32) -> u32 {
        if self.scale == 0.0 {
            return 0;
        }
        let code = (value / self.scale).round();
        if code <= 0.0 {
            0
        } else if code >= self.max_code() as f32 {
            self.max_code()
        } else {
            code as u32
        }
    }

    /// Real value of a code.
    pub fn dequantize(&self, code: u32) -> f32 {
        code as f32 * self.scale
    }
}

/// A single fixed-point value: a code together with its format.
///
/// # Example
///
/// ```
/// use forms_tensor::{FixedPoint, FixedSpec};
///
/// let spec = FixedSpec::new(16, 1.0 / 65535.0);
/// let x = FixedPoint::quantize(0.001, spec);
/// assert_eq!(x.effective_bits(), 7); // 0.001 * 65535 ≈ 66 = 0b1000010
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedPoint {
    code: u32,
    spec: FixedSpec,
}

impl FixedPoint {
    /// Quantizes a value into the given format.
    pub fn quantize(value: f32, spec: FixedSpec) -> Self {
        Self {
            code: spec.quantize(value),
            spec,
        }
    }

    /// Builds from a raw code.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the format's largest code.
    pub fn from_code(code: u32, spec: FixedSpec) -> Self {
        assert!(
            code <= spec.max_code(),
            "code {code} exceeds max code {}",
            spec.max_code()
        );
        Self { code, spec }
    }

    /// The raw code.
    pub fn code(&self) -> u32 {
        self.code
    }

    /// The format.
    pub fn spec(&self) -> FixedSpec {
        self.spec
    }

    /// The real value the code represents.
    pub fn to_f32(self) -> f32 {
        self.spec.dequantize(self.code)
    }

    /// Number of *effective bits* (paper §IV-B): the code's bit-length after
    /// stripping leading zeros. A zero code has 0 effective bits.
    pub fn effective_bits(&self) -> u32 {
        32 - self.code.leading_zeros()
    }

    /// Bit `plane` of the code (plane 0 = LSB).
    pub fn bit(&self, plane: u32) -> bool {
        plane < 32 && (self.code >> plane) & 1 == 1
    }
}

/// A tensor quantized to a shared unsigned fixed-point format.
///
/// This is the form in which activations travel from eDRAM to the crossbar
/// input registers. It retains its source shape so results can be folded
/// back into the layer pipeline.
///
/// # Example
///
/// ```
/// use forms_tensor::{QuantizedTensor, Tensor};
///
/// let t = Tensor::from_vec(vec![0.0, 0.25, 0.5, 1.0], &[4]);
/// let q = QuantizedTensor::quantize(&t, 8);
/// let back = q.dequantize();
/// assert!(t.allclose(&back, 1.0 / 255.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedTensor {
    codes: Vec<u32>,
    spec: FixedSpec,
    dims: Vec<usize>,
}

impl QuantizedTensor {
    /// Quantizes a non-negative tensor to `bits` bits, scaling so the tensor
    /// maximum maps to the top code.
    ///
    /// Values below zero (which cannot occur after ReLU, the case this type
    /// is built for) clamp to zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=31`.
    pub fn quantize(tensor: &Tensor, bits: u32) -> Self {
        let spec = FixedSpec::for_max_value(bits, tensor.max());
        Self::quantize_with(tensor, spec)
    }

    /// Quantizes with an explicit format (for sharing one scale across
    /// tensors, e.g. a whole layer's activations).
    pub fn quantize_with(tensor: &Tensor, spec: FixedSpec) -> Self {
        Self {
            codes: tensor.data().iter().map(|&v| spec.quantize(v)).collect(),
            spec,
            dims: tensor.dims().to_vec(),
        }
    }

    /// The shared format.
    pub fn spec(&self) -> FixedSpec {
        self.spec
    }

    /// The raw codes in row-major order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The original tensor shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reconstructs the real-valued tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes
                .iter()
                .map(|&c| self.spec.dequantize(c))
                .collect(),
            &self.dims,
        )
    }

    /// Per-element effective bit counts (0 for zero codes).
    pub fn effective_bits(&self) -> Vec<u32> {
        self.codes.iter().map(|c| 32 - c.leading_zeros()).collect()
    }

    /// Extracts bit `plane` of every code as 0/1 values (plane 0 = LSB).
    pub fn bit_plane(&self, plane: u32) -> Vec<u8> {
        self.codes
            .iter()
            .map(|&c| ((c >> plane) & 1) as u8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_quantize_saturates_and_clamps() {
        let spec = FixedSpec::new(4, 1.0);
        assert_eq!(spec.quantize(-3.0), 0);
        assert_eq!(spec.quantize(7.4), 7);
        assert_eq!(spec.quantize(100.0), 15);
        assert_eq!(spec.max_code(), 15);
    }

    #[test]
    fn for_max_value_puts_max_at_top_code() {
        let spec = FixedSpec::for_max_value(8, 4.0);
        assert_eq!(spec.quantize(4.0), 255);
    }

    #[test]
    fn for_max_value_degenerate_zero() {
        let spec = FixedSpec::for_max_value(8, 0.0);
        assert_eq!(spec.quantize(0.0), 0);
    }

    #[test]
    fn non_finite_max_yields_degenerate_spec() {
        // Regression: a faulted engine can push NaN/inf activations into
        // the quantizer. Infinity used to blow the `new` assert via an
        // infinite scale; NaN fell back to scale 1.0 and saturated every
        // infinite value to the top code. Both must collapse to zeros.
        for max in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let spec = FixedSpec::for_max_value(8, max);
            assert!(spec.is_degenerate(), "max {max} must degenerate");
            for v in [0.0, 1.0, f32::INFINITY, f32::NAN, -3.0] {
                assert_eq!(spec.quantize(v), 0, "degenerate quantize({v})");
            }
            assert_eq!(spec.dequantize(255), 0.0);
        }
        // Finite maxima are unaffected.
        assert!(!FixedSpec::for_max_value(8, 4.0).is_degenerate());
    }

    #[test]
    fn degenerate_tensor_quantizes_to_all_zero_codes() {
        let t = Tensor::from_vec(vec![1.0, f32::INFINITY, 0.5], &[3]);
        let q = QuantizedTensor::quantize(&t, 8);
        assert!(q.spec().is_degenerate());
        assert_eq!(q.codes(), &[0, 0, 0]);
        assert_eq!(q.dequantize().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn new_still_rejects_zero_scale() {
        FixedSpec::new(8, 0.0);
    }

    #[test]
    fn effective_bits_counts_significant_bits() {
        let spec = FixedSpec::new(16, 1.0);
        assert_eq!(FixedPoint::from_code(0, spec).effective_bits(), 0);
        assert_eq!(FixedPoint::from_code(1, spec).effective_bits(), 1);
        assert_eq!(FixedPoint::from_code(0b1011, spec).effective_bits(), 4);
        assert_eq!(FixedPoint::from_code(0xFFFF, spec).effective_bits(), 16);
    }

    #[test]
    fn bit_access_matches_binary() {
        let spec = FixedSpec::new(8, 1.0);
        let x = FixedPoint::from_code(0b1010, spec);
        assert!(!x.bit(0));
        assert!(x.bit(1));
        assert!(!x.bit(2));
        assert!(x.bit(3));
        assert!(!x.bit(31));
    }

    #[test]
    #[should_panic(expected = "exceeds max code")]
    fn from_code_rejects_overflow() {
        FixedPoint::from_code(16, FixedSpec::new(4, 1.0));
    }

    #[test]
    fn quantize_round_trip_error_bounded() {
        let t = Tensor::from_fn(&[64], |i| (i as f32 / 63.0).powi(2) * 3.0);
        let q = QuantizedTensor::quantize(&t, 12);
        let err = t.max_abs_diff(&q.dequantize());
        assert!(
            err <= q.spec().scale() / 2.0 + 1e-6,
            "error {err} too large"
        );
    }

    #[test]
    fn bit_planes_reassemble_codes() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 7.0], &[6]);
        let q = QuantizedTensor::quantize_with(&t, FixedSpec::new(3, 1.0));
        let mut rebuilt = vec![0u32; q.len()];
        for plane in 0..3 {
            for (r, &b) in rebuilt.iter_mut().zip(&q.bit_plane(plane)) {
                *r |= (b as u32) << plane;
            }
        }
        assert_eq!(rebuilt, q.codes());
    }

    #[test]
    fn shared_spec_across_tensors() {
        let spec = FixedSpec::for_max_value(8, 10.0);
        let a = Tensor::from_vec(vec![5.0], &[1]);
        let b = Tensor::from_vec(vec![10.0], &[1]);
        let qa = QuantizedTensor::quantize_with(&a, spec);
        let qb = QuantizedTensor::quantize_with(&b, spec);
        assert_eq!(qb.codes()[0], 255);
        assert!((qa.codes()[0] as f32 - 127.5).abs() <= 0.5);
    }
}
