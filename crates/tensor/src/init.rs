//! Weight initializers.
//!
//! The reproduction trains its DNNs from scratch (no pretrained checkpoints
//! are available offline), so initialization quality matters for reaching
//! the accuracies the compression experiments are measured against.

use forms_rng::Rng;

use crate::Tensor;

/// Uniform initialization in `[-bound, bound]`.
///
/// # Panics
///
/// Panics if `bound` is negative or not finite.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], bound: f32) -> Tensor {
    assert!(
        bound.is_finite() && bound >= 0.0,
        "bound must be non-negative"
    );
    Tensor::from_fn(shape, |_| rng.gen_range(-bound..=bound))
}

/// Kaiming (He) uniform initialization for ReLU networks:
/// `bound = sqrt(6 / fan_in)`.
///
/// `fan_in` is the number of inputs feeding one output unit (for a conv
/// filter: `in_channels * k_h * k_w`).
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(rng, shape, bound)
}

/// Xavier (Glorot) uniform initialization:
/// `bound = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&mut rng, &[1000], 0.5);
        assert!(t.max() <= 0.5 && t.min() >= -0.5);
        // Should actually spread over the interval.
        assert!(t.max() > 0.3 && t.min() < -0.3);
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let wide = kaiming_uniform(&mut rng, &[1000], 10);
        let narrow = kaiming_uniform(&mut rng, &[1000], 1000);
        assert!(wide.abs_max() > narrow.abs_max());
    }

    #[test]
    fn xavier_bound_is_symmetric_in_fans() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let t1 = xavier_uniform(&mut a, &[100], 30, 70);
        let t2 = xavier_uniform(&mut b, &[100], 70, 30);
        assert_eq!(t1, t2);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(uniform(&mut a, &[16], 1.0), uniform(&mut b, &[16], 1.0));
    }
}
