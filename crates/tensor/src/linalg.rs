//! Convolution lowering: im2col / col2im and convolution geometry.
//!
//! FORMS reshapes convolution filters into a 2-D weight matrix (paper Fig. 2)
//! whose columns are filters and whose rows are filter-shape positions; the
//! activation side of that product is produced by `im2col`. The same lowering
//! is used both by the digital reference implementation in `forms-dnn` and by
//! the crossbar mapping in `forms-arch`, which keeps the two sides directly
//! comparable.

use crate::Tensor;

/// Spatial geometry of a 2-D convolution.
///
/// # Example
///
/// ```
/// use forms_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 32, 32, 3, 3, 1, 1);
/// assert_eq!((g.out_h, g.out_w), (32, 32));
/// assert_eq!(g.patch_len(), 27);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes output geometry from input geometry and kernel parameters.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or the kernel (plus padding) does not fit in
    /// the input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        assert!(
            padded_h >= k_h && padded_w >= k_w,
            "kernel {k_h}×{k_w} does not fit in padded input {padded_h}×{padded_w}"
        );
        Self {
            in_channels,
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            padding,
            out_h: (padded_h - k_h) / stride + 1,
            out_w: (padded_w - k_w) / stride + 1,
        }
    }

    /// Elements in one im2col patch (`in_channels * k_h * k_w`), i.e. the
    /// height of the lowered weight matrix.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Number of output spatial positions (`out_h * out_w`).
    pub fn out_positions(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Lowers a `[C, H, W]` input into a `[patch_len, out_positions]` matrix so
/// convolution becomes a matrix product.
///
/// Column `p` of the result is the receptive field of output position `p`
/// flattened in channel-major (C, then kh, then kw) order — the same order in
/// which FORMS' mapping scheme walks filter weights.
///
/// # Panics
///
/// Panics if `input` does not have shape `[C, H, W]` matching `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(
        input.dims(),
        &[geom.in_channels, geom.in_h, geom.in_w],
        "im2col input shape mismatch"
    );
    let cols = geom.out_positions();
    let rows = geom.patch_len();
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    let (h, w) = (geom.in_h, geom.in_w);
    for oy in 0..geom.out_h {
        for ox in 0..geom.out_w {
            let col = oy * geom.out_w + ox;
            let mut row = 0;
            for c in 0..geom.in_channels {
                for ky in 0..geom.k_h {
                    for kx in 0..geom.k_w {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            out[row * cols + col] = data[c * h * w + iy as usize * w + ix as usize];
                        }
                        row += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Adjoint of [`im2col`]: scatters a `[patch_len, out_positions]` matrix of
/// patch gradients back onto a `[C, H, W]` input-gradient tensor.
///
/// `col2im(im2col(x))` is *not* the identity — overlapping patches accumulate
/// — but the pair satisfies the adjoint identity
/// `⟨im2col(x), m⟩ = ⟨x, col2im(m)⟩`, which is what backpropagation needs and
/// what the property tests check.
///
/// # Panics
///
/// Panics if `cols` does not have shape `[patch_len, out_positions]`.
pub fn col2im(cols_mat: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(
        cols_mat.dims(),
        &[geom.patch_len(), geom.out_positions()],
        "col2im input shape mismatch"
    );
    let cols = geom.out_positions();
    let mut out = Tensor::zeros(&[geom.in_channels, geom.in_h, geom.in_w]);
    let (h, w) = (geom.in_h, geom.in_w);
    let data = cols_mat.data();
    let out_data = out.data_mut();
    for oy in 0..geom.out_h {
        for ox in 0..geom.out_w {
            let col = oy * geom.out_w + ox;
            let mut row = 0;
            for c in 0..geom.in_channels {
                for ky in 0..geom.k_h {
                    for kx in 0..geom.k_w {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            out_data[c * h * w + iy as usize * w + ix as usize] +=
                                data[row * cols + col];
                        }
                        row += 1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(16, 8, 8, 3, 3, 1, 1);
        assert_eq!((g.out_h, g.out_w), (8, 8));
        assert_eq!(g.patch_len(), 16 * 9);
    }

    #[test]
    fn geometry_stride_two() {
        let g = Conv2dGeometry::new(3, 32, 32, 3, 3, 2, 1);
        assert_eq!((g.out_h, g.out_w), (16, 16));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn geometry_rejects_zero_stride() {
        Conv2dGeometry::new(1, 4, 4, 3, 3, 0, 0);
    }

    #[test]
    fn im2col_1x1_kernel_is_reshape() {
        let g = Conv2dGeometry::new(2, 3, 3, 1, 1, 1, 0);
        let x = Tensor::from_fn(&[2, 3, 3], |i| i as f32);
        let m = im2col(&x, &g);
        assert_eq!(m.dims(), &[2, 9]);
        assert_eq!(m.data(), x.data());
    }

    #[test]
    fn im2col_extracts_patches() {
        // 1 channel, 3x3 input, 2x2 kernel, stride 1, no padding.
        let g = Conv2dGeometry::new(1, 3, 3, 2, 2, 1, 0);
        let x = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
        let m = im2col(&x, &g);
        assert_eq!(m.dims(), &[4, 4]);
        // First column = top-left patch [0,1,3,4].
        let col0: Vec<f32> = (0..4).map(|r| m.get(&[r, 0])).collect();
        assert_eq!(col0, vec![0.0, 1.0, 3.0, 4.0]);
        // Last column = bottom-right patch [4,5,7,8].
        let col3: Vec<f32> = (0..4).map(|r| m.get(&[r, 3])).collect();
        assert_eq!(col3, vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_zero_pads_border() {
        let g = Conv2dGeometry::new(1, 2, 2, 3, 3, 1, 1);
        let x = Tensor::ones(&[1, 2, 2]);
        let m = im2col(&x, &g);
        // Top-left output position: only the bottom-right 2x2 of the kernel
        // overlaps real input.
        let col0: Vec<f32> = (0..9).map(|r| m.get(&[r, 0])).collect();
        assert_eq!(col0.iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn conv_via_matmul_matches_direct() {
        // Direct convolution vs im2col+matmul on a small case.
        let g = Conv2dGeometry::new(1, 4, 4, 3, 3, 1, 0);
        let x = Tensor::from_fn(&[1, 4, 4], |i| (i % 5) as f32);
        let w = Tensor::from_fn(&[1, 9], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let m = im2col(&x, &g);
        let y = w.matmul(&m); // [1, 4]
                              // Direct computation for output (0,0):
        let mut direct = 0.0;
        let mut widx = 0;
        for ky in 0..3 {
            for kx in 0..3 {
                direct += w.data()[widx] * x.get(&[0, ky, kx]);
                widx += 1;
            }
        }
        assert!((y.get(&[0, 0]) - direct).abs() < 1e-6);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let g = Conv2dGeometry::new(2, 5, 5, 3, 3, 1, 1);
        let x = Tensor::from_fn(&[2, 5, 5], |i| (i as f32 * 0.37).sin());
        let m = Tensor::from_fn(&[g.patch_len(), g.out_positions()], |i| {
            (i as f32 * 0.11).cos()
        });
        let lhs: f32 = im2col(&x, &g)
            .data()
            .iter()
            .zip(m.data())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&m, &g).data())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3,
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }
}
