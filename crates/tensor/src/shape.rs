//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The extents of a dense row-major tensor.
///
/// A `Shape` is an ordered list of dimension sizes. The last dimension is
/// contiguous in memory ("row-major" / C order), matching what the DNN layers
/// and the crossbar mapping code in the rest of the workspace assume.
///
/// # Example
///
/// ```
/// use forms_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// A zero-dimensional shape (scalar) is allowed and has `len() == 1`.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) of each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for axis in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[axis] = strides[axis + 1] * self.dims[axis + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut offset = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            assert!(
                index[axis] < self.dims[axis],
                "index {} out of bounds for axis {} with extent {}",
                index[axis],
                axis,
                self.dims[axis]
            );
            offset += index[axis] * stride;
            stride *= self.dims[axis];
        }
        offset
    }

    /// Inverse of [`offset`](Self::offset): the multi-index of a linear
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len()`.
    pub fn index(&self, offset: usize) -> Vec<usize> {
        assert!(
            offset < self.len(),
            "offset {offset} out of bounds for shape of {} elements",
            self.len()
        );
        let mut index = vec![0; self.dims.len()];
        let mut rest = offset;
        for axis in (0..self.dims.len()).rev() {
            index[axis] = rest % self.dims[axis];
            rest /= self.dims[axis];
        }
        index
    }

    /// Whether two shapes have the same number of elements (reshape
    /// compatibility).
    pub fn same_len(&self, other: &Shape) -> bool {
        self.len() == other.len()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[7]).len(), 7);
        assert_eq!(Shape::new(&[]).len(), 1);
    }

    #[test]
    fn offset_and_index_round_trip() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.index(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn last_dim_is_contiguous() {
        let s = Shape::new(&[4, 6]);
        assert_eq!(s.offset(&[2, 3]) + 1, s.offset(&[2, 4]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    fn display_formats_extents() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2×3]");
    }

    #[test]
    fn empty_shape_detected() {
        assert!(Shape::new(&[4, 0, 2]).is_empty());
        assert!(!Shape::new(&[4, 1, 2]).is_empty());
    }
}
