//! The sampling distributions the simulator uses: Gaussian (read noise,
//! half-normal activations), exponential (activation tails) and log-normal
//! (device variation).

use std::fmt;

use crate::Rng;

/// A distribution that can draw values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistError(&'static str);

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistError {}

/// One standard-normal draw via Box–Muller (deterministic: exactly two
/// uniforms per call).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: shift the 53-bit uniform off zero so ln() is finite.
    let u1 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) + f64::MIN_POSITIVE;
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `std_dev` is negative or either parameter is not
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() {
            return Err(DistError("mean must be finite"));
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistError(
                "standard deviation must be finite and non-negative",
            ));
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(DistError("rate must be finite and positive"));
        }
        Ok(Self { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u is in (0, 1] so ln() is finite.
        let u: f64 = rng.gen();
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the log-space parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma` is negative or either parameter is not
    /// finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StdRng;

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_normal_is_constant() {
        let d = Normal::new(1.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..10).all(|_| d.sample(&mut rng) == 1.5));
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn log_normal_log_stats_match() {
        let d = LogNormal::new(0.25, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let logs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng).ln()).collect();
        let mean = logs.iter().sum::<f64>() / n as f64;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "log mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.005, "log std {}", var.sqrt());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
        assert!(LogNormal::new(0.0, -0.5).is_err());
    }
}
