//! Deterministic, dependency-free randomness for the FORMS reproduction.
//!
//! Simulator reproductions live or die on reproducible runs, so every
//! stochastic component in this workspace draws from the seedable generator
//! defined here instead of an ambient third-party RNG. The contract is
//! strict: **a fixed seed yields bit-identical simulation results** on every
//! platform, every build, every run — there is no entropy source, no
//! platform-dependent path, and no external crate in the loop.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64. It is fast, passes BigCrush, and its 256-bit state splits
//! cleanly across the independent streams the experiments use.
//!
//! # Example
//!
//! ```
//! use forms_rng::{Rng, StdRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen::<f32>(), b.gen::<f32>());
//! assert!(a.gen_range(0..10) < 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

mod distributions;

pub use distributions::{DistError, Distribution, Exp, LogNormal, Normal};

/// A source of uniformly distributed random bits plus the derived sampling
/// methods the workspace uses.
///
/// Implementors only provide [`next_u64`](Rng::next_u64); everything else
/// has default implementations, so the trait stays object-friendly for
/// `R: Rng + ?Sized` bounds throughout the codebase.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](Rng::next_u64), which carries xoshiro's best bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a value from the type's standard distribution: `[0, 1)` for
    /// floats, full range for integers, fair coin for `bool`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range, e.g. `rng.gen_range(0..10)`
    /// or `rng.gen_range(-1.0..=1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// Named `StdRng` because it is the *only* generator the workspace uses;
/// the determinism contract (fixed seed → bit-identical results) is part of
/// its public API, so the algorithm must never change silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// Alias kept close to the name the code migrated from (`rand`'s `StdRng`).
pub type StdRng = Xoshiro256PlusPlus;

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64 (the
    /// seeding procedure the xoshiro authors recommend). Distinct seeds give
    /// well-separated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds from 32 raw bytes (little-endian words). An all-zero seed is
    /// remapped through SplitMix64 since the all-zero state is a fixed
    /// point of xoshiro.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable from their standard distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of resolution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of resolution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int_impl {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `n` (exclusive) — Lemire's multiply-shift method
/// with rejection, so the result is exactly uniform.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let v = self.start + rng.gen::<$t>() * (self.end - self.start);
                // Guard against round-up onto the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                start + rng.gen::<$t>() * (end - start)
            }
        }
    )*};
}
float_range_impl!(f32, f64);

/// Fisher–Yates shuffle (deterministic given the generator state).
pub fn shuffle<T, R: Rng + ?Sized>(slice: &mut [T], rng: &mut R) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_bit_identical() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_xoshiro256pp_reference_vectors() {
        // Known-answer test against the xoshiro256++ reference
        // implementation with state {1, 2, 3, 4}. These values can never
        // change: the determinism contract pins the algorithm itself.
        let mut seed = [0u8; 32];
        for (i, word) in [1u64, 2, 3, 4].iter().enumerate() {
            seed[i * 8..(i + 1) * 8].copy_from_slice(&word.to_le_bytes());
        }
        let mut rng = StdRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_byte_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(8);
        let vals: Vec<f64> = (0..10_000).map(|_| rng.gen()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(vals.iter().any(|&v| v < 0.01) && vals.iter().any(|&v| v > 0.99));
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(-1i32..=2);
            seen_incl[(v + 1) as usize] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(rng.gen_range(3..=3usize), 3);
        assert_eq!(rng.gen_range(0.0f32..=0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&v));
            let w = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_edges_and_frequency() {
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&heads), "heads {heads}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_probability() {
        StdRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(14);
        let mut by_ref = &mut rng;
        let _ = draw(&mut by_ref);
        let _ = draw(&mut rng);
    }
}
