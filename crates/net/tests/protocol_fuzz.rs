//! Fuzz-shaped property tests of the wire protocol: the decoder must be
//! *total* — every byte sequence either parses or yields a typed
//! [`WireError`], never a panic or an out-of-bounds slice.
//!
//! Deterministic (seeded `forms-rng`), so a failure is a permanent
//! reproduction, not a flake.

use forms_net::protocol::{decode, read_frame, HEADER_LEN, MAX_PAYLOAD};
use forms_net::{Frame, WireError, WireStatus};
use forms_rng::{Rng, StdRng};

/// Draws one well-formed frame of an arbitrary kind.
fn arbitrary_frame(rng: &mut StdRng) -> Frame {
    let id: u64 = rng.gen();
    match rng.gen_range(0u8..5) {
        0 => Frame::Request {
            id,
            deadline_us: rng.gen_range(0u64..2_000_000),
            input: (0..rng.gen_range(0usize..48))
                .map(|_| rng.gen_range(-4.0f32..4.0))
                .collect(),
        },
        1 => Frame::Response {
            id,
            latency_us: rng.gen_range(0u64..10_000_000),
            output: (0..rng.gen_range(0usize..48))
                .map(|_| rng.gen_range(-4.0f32..4.0))
                .collect(),
        },
        2 => Frame::Error {
            id,
            status: WireStatus::from_code(rng.gen_range(1u8..8)).unwrap(),
            expected: 0,
            got: 0,
        },
        3 => Frame::TelemetryRequest { id },
        _ => Frame::Telemetry {
            id,
            json: "{\n  \"completed\": 1,\n  \"plan\": \"µs→p99\"\n}"
                .chars()
                .take(rng.gen_range(0usize..30))
                .collect(),
        },
    }
}

/// `decode` on mutated frames: typed errors or re-decodable frames only.
/// Slice decoding is pure, so "no panic and in-bounds output" is the
/// whole safety contract.
#[test]
fn arbitrary_byte_mutations_never_panic_the_decoder() {
    let mut rng = StdRng::seed_from_u64(0xF0_22_B1);
    for _ in 0..2_000 {
        let frame = arbitrary_frame(&mut rng);
        let mut bytes = frame.encode();
        // Sanity: the unmutated bytes round-trip.
        assert_eq!(decode(&bytes).unwrap().0, frame);
        // Mutate 1–8 bytes anywhere in the frame.
        for _ in 0..rng.gen_range(1usize..9) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen();
        }
        // The mutation may still leave a valid frame (payload bytes of a
        // tensor, say) — it must then re-encode consistently. Otherwise
        // a typed error, proven by getting here without a panic.
        if let Ok((decoded, consumed)) = decode(&bytes) {
            assert!(consumed <= bytes.len());
            let _ = decoded.encode();
        }
    }
}

/// Truncation at every prefix length yields `TruncatedHeader` or
/// `TruncatedPayload` (or another typed error when the mutation landed in
/// the header), never a panic.
#[test]
fn truncated_frames_yield_typed_truncation_errors() {
    let mut rng = StdRng::seed_from_u64(0xF0_22_B2);
    for _ in 0..200 {
        let bytes = arbitrary_frame(&mut rng).encode();
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            if cut < HEADER_LEN {
                assert_eq!(err, WireError::TruncatedHeader { got: cut });
            } else {
                assert!(matches!(err, WireError::TruncatedPayload { .. }), "{err:?}");
            }
        }
    }
}

/// Oversized length prefixes are rejected from the header alone — before
/// any payload allocation — for both the slice and the stream decoder.
#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    let mut rng = StdRng::seed_from_u64(0xF0_22_B3);
    for _ in 0..200 {
        let mut bytes = arbitrary_frame(&mut rng).encode();
        let huge: u32 = rng.gen_range(MAX_PAYLOAD + 1..=u32::MAX);
        bytes[24..28].copy_from_slice(&huge.to_le_bytes());
        bytes.truncate(HEADER_LEN);
        assert_eq!(
            decode(&bytes).unwrap_err(),
            WireError::Oversized { len: huge }
        );
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err(),
            WireError::Oversized { len: huge }
        );
    }
}

/// The stream reader agrees with the slice decoder on arbitrary mutated
/// byte streams: same frame or same error class, and a clean EOF once the
/// stream is exhausted mid-header.
#[test]
fn stream_reader_matches_slice_decoder_on_mutated_streams() {
    let mut rng = StdRng::seed_from_u64(0xF0_22_B4);
    for _ in 0..500 {
        let mut bytes = arbitrary_frame(&mut rng).encode();
        if rng.gen_bool(0.7) && !bytes.is_empty() {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen();
        }
        if rng.gen_bool(0.3) {
            bytes.truncate(rng.gen_range(0..=bytes.len()));
        }
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let streamed = read_frame(&mut cursor);
        match decode(&bytes) {
            Ok((frame, _)) => assert_eq!(streamed.unwrap(), Some(frame)),
            // Empty input is a clean EOF for a stream, an error for a
            // slice decode — the one intentional divergence.
            Err(WireError::TruncatedHeader { got: 0 }) => assert_eq!(streamed.unwrap(), None),
            Err(slice_err) => {
                assert_eq!(streamed.unwrap_err(), slice_err, "input {bytes:02x?}")
            }
        }
    }
}
