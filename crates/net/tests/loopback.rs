//! End-to-end loopback tests: real sockets against a real serving core.
//!
//! Every test binds an ephemeral port on 127.0.0.1, so the suite runs
//! hermetically and in parallel.

use std::net::TcpStream;
use std::time::Duration;

use forms_arch::{MappedLayer, MappingConfig};
use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_exec::{Executor, FaultCampaign};
use forms_net::protocol::{read_frame, write_frame, Frame};
use forms_net::{serve_net, serve_net_resilient, ClientConfig, NetClient, NetConfig, WireStatus};
use forms_rng::StdRng;
use forms_serve::{HealthPolicy, PacedConfig, PacedEngine, ResilientConfig, ServeConfig};
use forms_tensor::Tensor;

const ROWS: usize = 16;
const COLS: usize = 4;

/// A 16→4 single-polarity linear net: trivially fragment-polarized, and
/// stuck-high faults can only inflate outputs past the pristine ceiling
/// (the property the degradation test relies on).
fn polarized_network() -> Network {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, ROWS, COLS)]);
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&Tensor::from_fn(&[ROWS, COLS], |i| {
                0.05 + (i % 9) as f32 * 0.1
            }));
        }
    });
    net
}

fn mapping() -> MappingConfig {
    MappingConfig {
        crossbar_dim: 16,
        input_bits: 8,
        ..MappingConfig::paper(4)
    }
}

fn executor() -> Executor<MappedLayer> {
    Executor::map_network(&polarized_network(), &mapping(), 8).unwrap()
}

/// The same layer behind a modeled device latency, for tests that need
/// requests to spend real time in the queue.
fn paced_executor(latency: Duration) -> Executor<PacedEngine<MappedLayer>> {
    let config = PacedConfig {
        inner: mapping(),
        latency,
    };
    Executor::map_network(&polarized_network(), &config, 8).unwrap()
}

fn sample(scale: f32) -> Vec<f32> {
    (0..ROWS)
        .map(|i| scale * (i as f32) / ROWS as f32)
        .collect()
}

#[test]
fn socket_call_is_bitwise_identical_to_in_process_submission() {
    let exec = executor();
    let serve = ServeConfig {
        replicas: 2,
        ..ServeConfig::default()
    };
    let ((), telemetry) = serve_net(&exec, &[ROWS], &serve, &NetConfig::default(), |net| {
        let in_process = net
            .service()
            .submit(sample(1.0))
            .unwrap()
            .wait()
            .unwrap()
            .output;
        let addr = net.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                let reply = client.call(&sample(1.0), None).unwrap();
                assert_eq!(reply.outcome.unwrap(), in_process);
                assert!(reply.server_latency > Duration::ZERO);
            });
        });
    })
    .unwrap();
    assert_eq!(telemetry.completed, 2);
    assert_eq!(telemetry.submitted, 2);
}

#[test]
fn pipelined_requests_resolve_in_send_order() {
    let exec = executor();
    let (serve, net_cfg) = (ServeConfig::default(), NetConfig::default());
    let ((), telemetry) = serve_net(&exec, &[ROWS], &serve, &net_cfg, |net| {
        let addr = net.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                let expected: Vec<u64> = (0..16)
                    .map(|i| client.send(&sample(i as f32 / 16.0), None).unwrap())
                    .collect();
                assert_eq!(client.in_flight(), 16);
                for want in expected {
                    let reply = client.recv().unwrap();
                    assert_eq!(reply.id, want);
                    assert_eq!(reply.outcome.unwrap().len(), COLS);
                }
                assert_eq!(client.in_flight(), 0);
            });
        });
    })
    .unwrap();
    assert_eq!(telemetry.completed, 16);
}

#[test]
fn rejections_are_statuses_on_a_live_connection_not_disconnects() {
    // 20 ms device latency makes queue time observable: a 1 µs deadline
    // always expires before batch formation.
    let exec = paced_executor(Duration::from_millis(20));
    let serve = ServeConfig {
        replicas: 1,
        queue_capacity: 1,
        max_batch: 1,
        max_delay: Duration::ZERO,
        default_deadline: None,
    };
    let ((), telemetry) = serve_net(&exec, &[ROWS], &serve, &NetConfig::default(), |net| {
        let addr = net.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                // Wrong payload length → BadShape with both lengths.
                let reply = client.call(&[1.0; 3], None).unwrap();
                assert_eq!(reply.outcome, Err(WireStatus::BadShape));
                // An impossible deadline → DeadlineExceeded.
                let reply = client
                    .call(&sample(1.0), Some(Duration::from_micros(1)))
                    .unwrap();
                assert_eq!(reply.outcome, Err(WireStatus::DeadlineExceeded));
                // Blast a capacity-1 queue through a 20 ms device: most
                // requests shed, and the connection survives all of it.
                let sent: Vec<u64> = (0..12)
                    .map(|_| client.send(&sample(0.5), None).unwrap())
                    .collect();
                let mut shed = 0usize;
                let mut completed = 0usize;
                for _ in &sent {
                    match client.recv().unwrap().outcome {
                        Ok(_) => completed += 1,
                        Err(WireStatus::Shed) => shed += 1,
                        Err(other) => panic!("unexpected status {other}"),
                    }
                }
                assert!(completed >= 1, "at least the head request completes");
                assert!(shed >= 1, "a capacity-1 queue under blast must shed");
                // The same connection still serves a clean request.
                let reply = client.call(&sample(1.0), None).unwrap();
                assert!(reply.is_ok());
            });
        });
    })
    .unwrap();
    assert!(telemetry.shed >= 1);
    assert!(telemetry.expired >= 1);
}

#[test]
fn telemetry_frame_round_trips_the_snapshot_over_the_wire() {
    let exec = executor();
    let (serve, net_cfg) = (ServeConfig::default(), NetConfig::default());
    let ((), final_snapshot) = serve_net(&exec, &[ROWS], &serve, &net_cfg, |net| {
        let addr = net.addr();
        let handle_snapshot = std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                for _ in 0..3 {
                    assert!(client.call(&sample(1.0), None).unwrap().is_ok());
                }
                client.telemetry().unwrap()
            })
            .join()
            .unwrap()
        });
        // The wire snapshot is the service's own snapshot, not a copy
        // with drift: fetch in-process telemetry after the client is done
        // and check the wire one is consistent with it.
        let direct = net.telemetry();
        assert_eq!(handle_snapshot.completed, 3);
        assert_eq!(handle_snapshot.plan, direct.plan);
        assert!(direct.completed >= handle_snapshot.completed);
        // The v2 tracing extensions survive the wire: per-stage counts
        // match the completions and per-layer attribution is populated.
        for stage in handle_snapshot.stages.in_order() {
            assert_eq!(stage.count, 3, "every stage sees every completion");
        }
        assert!(
            handle_snapshot.layers.iter().any(|l| l.mvms > 0),
            "per-layer attribution crossed the wire"
        );
    })
    .unwrap();
    assert_eq!(final_snapshot.completed, 3);
}

#[test]
fn concurrent_connections_multiplex_onto_one_queue() {
    let exec = executor();
    let serve = ServeConfig {
        replicas: 2,
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    let per_conn = 8usize;
    let conns = 6usize;
    let ((), telemetry) = serve_net(&exec, &[ROWS], &serve, &NetConfig::default(), |net| {
        let addr = net.addr();
        std::thread::scope(|s| {
            for c in 0..conns {
                s.spawn(move || {
                    let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                    for i in 0..per_conn {
                        let reply = client
                            .call(&sample((c * per_conn + i) as f32 / 48.0), None)
                            .unwrap();
                        assert!(reply.is_ok());
                    }
                });
            }
        });
    })
    .unwrap();
    assert_eq!(telemetry.completed, (per_conn * conns) as u64);
}

#[test]
fn shutdown_drains_in_flight_requests_before_closing() {
    let exec = paced_executor(Duration::from_millis(5));
    let serve = ServeConfig {
        replicas: 1,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let n = 6usize;
    // Smuggle the stream out of the closure: requests are in flight when
    // shutdown starts, and the drain contract says each still gets a
    // response frame before the server lets go of the connection.
    let (stream, telemetry) = serve_net(&exec, &[ROWS], &serve, &NetConfig::default(), |net| {
        let mut stream = TcpStream::connect(net.addr()).unwrap();
        let mut scratch = Vec::new();
        for id in 0..n as u64 {
            let frame = Frame::Request {
                id,
                deadline_us: 0,
                input: sample(1.0),
            };
            write_frame(&mut stream, &frame, &mut scratch).unwrap();
        }
        stream
    })
    .unwrap();
    let mut stream = stream;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for want in 0..n as u64 {
        let frame = read_frame(&mut stream).unwrap().expect("drained response");
        match frame {
            Frame::Response { id, output, .. } => {
                assert_eq!(id, want);
                assert_eq!(output.len(), COLS);
            }
            other => panic!("expected a drained response, got {other:?}"),
        }
    }
    assert_eq!(telemetry.completed, n as u64);
}

#[test]
fn poisoned_replica_surfaces_degraded_as_wire_statuses_with_zero_corruption() {
    let exec = executor();
    let clean = exec
        .clone()
        .forward(&Tensor::from_vec(vec![1.0; ROWS], &[1, ROWS]))
        .into_vec();
    let config = ResilientConfig {
        serve: ServeConfig {
            replicas: 2,
            queue_capacity: 64,
            max_batch: 2,
            max_delay: Duration::from_micros(200),
            default_deadline: None,
        },
        policy: HealthPolicy {
            // Tolerate the raw density so the output sentinels (not the
            // density gate) refuse corrupted batches.
            max_fault_density: 1.0,
            max_rebuilds: 1,
            backoff: Duration::from_micros(100),
            backoff_multiplier: 2.0,
        },
    };
    let ((ok_outputs, degraded), telemetry) = serve_net_resilient(
        &exec,
        &[ROWS],
        &config,
        &NetConfig::default(),
        |net, faults| {
            let addr = net.addr();
            let service = net.service().clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                    let mut ok_outputs: Vec<Vec<f32>> = Vec::new();
                    let mut degraded = 0usize;
                    let mut drive = |n: usize, ok: &mut Vec<Vec<f32>>, deg: &mut usize| {
                        for _ in 0..n {
                            // Full-scale inputs leave a stuck-high array
                            // no quantization headroom to hide in.
                            match client.call(&[1.0; ROWS], None).unwrap().outcome {
                                Ok(out) => ok.push(out),
                                Err(WireStatus::Degraded) => *deg += 1,
                                Err(other) => panic!("unexpected status {other}"),
                            }
                        }
                    };
                    drive(8, &mut ok_outputs, &mut degraded);
                    faults.poison(0, FaultCampaign::stuck_at(0x570_12A, 0.0, 0.35));
                    let mut waves = 0;
                    while service.telemetry().quarantines == 0 && waves < 400 {
                        drive(2, &mut ok_outputs, &mut degraded);
                        waves += 1;
                    }
                    (ok_outputs, degraded)
                })
                .join()
                .unwrap()
            })
        },
    )
    .unwrap();
    let corrupted = ok_outputs.iter().filter(|o| **o != clean).count();
    assert_eq!(corrupted, 0, "no corrupted response may cross the wire");
    assert!(degraded >= 1, "poison must surface as Degraded statuses");
    assert_eq!(degraded as u64, telemetry.degraded);
    assert!(telemetry.quarantines >= 1, "poisoned replica quarantines");
}

#[test]
fn malformed_bytes_drop_the_connection_but_not_the_server() {
    let exec = executor();
    let (serve, net_cfg) = (ServeConfig::default(), NetConfig::default());
    let ((), telemetry) = serve_net(&exec, &[ROWS], &serve, &net_cfg, |net| {
        let addr = net.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Garbage bytes: the server must drop this connection.
                let mut bad = TcpStream::connect(addr).unwrap();
                std::io::Write::write_all(&mut bad, b"GET / HTTP/1.1\r\n\r\n").unwrap();
                bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                assert_eq!(read_frame(&mut bad).unwrap(), None, "server closed");
                // ...while a well-behaved connection keeps working.
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                assert!(client.call(&sample(1.0), None).unwrap().is_ok());
            });
        });
    })
    .unwrap();
    assert_eq!(telemetry.completed, 1);
}

#[test]
fn client_reconnects_with_backoff_after_an_idle_drop() {
    let exec = executor();
    let config = NetConfig {
        // Aggressive idle reaping: the server drops any connection silent
        // for 30 ms, at a 10 ms poll granularity.
        read_timeout: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_millis(30)),
        ..NetConfig::default()
    };
    let ((), telemetry) = serve_net(&exec, &[ROWS], &ServeConfig::default(), &config, |net| {
        let addr = net.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                assert!(client.call(&sample(1.0), None).unwrap().is_ok());
                // Outlive the idle timeout so the server reaps the
                // connection; the next call must transparently reconnect
                // and resend.
                std::thread::sleep(Duration::from_millis(120));
                let reply = client.call(&sample(0.5), None).unwrap();
                assert!(reply.is_ok(), "call() reconnects and resends");
            });
        });
    })
    .unwrap();
    assert_eq!(telemetry.completed, 2);
}

#[test]
fn net_config_validate_rejects_contradictions() {
    use forms_net::NetConfigError;
    assert_eq!(NetConfig::default().validate(), Ok(()));
    let base = NetConfig::default();
    assert_eq!(
        NetConfig {
            max_connections: 0,
            ..base
        }
        .validate(),
        Err(NetConfigError::ZeroConnections)
    );
    assert_eq!(
        NetConfig {
            max_in_flight: 0,
            ..base
        }
        .validate(),
        Err(NetConfigError::ZeroInFlight)
    );
    assert_eq!(
        NetConfig {
            read_timeout: Duration::ZERO,
            ..base
        }
        .validate(),
        Err(NetConfigError::ZeroReadTimeout)
    );
    // An idle timeout inside the poll granularity would reap every
    // connection at its first quiet tick.
    let reapy = NetConfig {
        read_timeout: Duration::from_millis(50),
        idle_timeout: Some(Duration::from_millis(10)),
        ..base
    };
    assert!(matches!(
        reapy.validate(),
        Err(NetConfigError::IdleShorterThanPoll { .. })
    ));
    // Equal is fine: one full poll tick of silence is a legal idle bound.
    let tight = NetConfig {
        read_timeout: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_millis(10)),
        ..base
    };
    assert_eq!(tight.validate(), Ok(()));
}

#[test]
fn builder_and_legacy_serve_net_agree() {
    use forms_net::NetServerExt;
    use forms_serve::Server;
    let exec = executor();
    let serve = ServeConfig::default();
    let drive = |net: &forms_net::NetHandle| {
        let addr = net.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                client.call(&sample(1.0), None).unwrap().outcome.unwrap()
            })
            .join()
            .unwrap()
        })
    };
    let (legacy_out, legacy_t) =
        serve_net(&exec, &[ROWS], &serve, &NetConfig::default(), drive).unwrap();
    let (builder_out, builder_t) = Server::builder()
        .config(serve)
        .run_net(&exec, &[ROWS], &NetConfig::default(), drive)
        .unwrap();
    assert_eq!(legacy_out, builder_out);
    assert_eq!(legacy_t.completed, builder_t.completed);
    assert_eq!(legacy_t.plan, builder_t.plan);

    // The resilient pair agrees too.
    let resilient = ResilientConfig {
        serve,
        policy: HealthPolicy::default(),
    };
    let drive2 = |net: &forms_net::NetHandle, _: &forms_serve::FaultInjector<'_>| drive(net);
    let (legacy_out, legacy_t) =
        serve_net_resilient(&exec, &[ROWS], &resilient, &NetConfig::default(), drive2).unwrap();
    let (builder_out, builder_t) = Server::builder()
        .config(serve)
        .health(HealthPolicy::default())
        .run_net_resilient(&exec, &[ROWS], &NetConfig::default(), drive2)
        .unwrap();
    assert_eq!(legacy_out, builder_out);
    assert_eq!(legacy_t.completed, builder_t.completed);
    assert_eq!(legacy_t.quarantines, builder_t.quarantines);
}
