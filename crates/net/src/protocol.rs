//! The binary wire protocol: length-prefixed, versioned frames.
//!
//! Every message on a `forms-net` connection is one frame — a fixed
//! 28-byte little-endian header followed by a bounded payload:
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  "FNET"
//!  4       1     version (currently 1)
//!  5       1     frame kind (see below)
//!  6       2     reserved, must be zero
//!  8       8     request id (echoed verbatim in the response)
//!  16      8     meta: Request → deadline in µs (0 = none)
//!                      Response → server-side latency in µs
//!                      all other kinds → must be zero
//!  24      4     payload length in bytes (≤ MAX_PAYLOAD)
//!  28      ...   payload
//! ```
//!
//! Payloads by kind:
//!
//! | kind | name             | payload |
//! |------|------------------|---------|
//! | 0    | Request          | flattened input sample, f32 little-endian |
//! | 1    | Response         | flattened output vector, f32 little-endian |
//! | 2    | Error            | 12 bytes: status `u8`, 3 zero pad bytes, `expected: u32`, `got: u32` (shape fields are zero unless status is BadShape) |
//! | 3    | TelemetryRequest | empty |
//! | 4    | Telemetry        | UTF-8 JSON of [`TelemetrySnapshot::to_json`](forms_serve::TelemetrySnapshot::to_json) |
//!
//! Decoding is *total*: any byte sequence either parses into a [`Frame`]
//! or yields a typed [`WireError`] — never a panic or an out-of-bounds
//! slice, which the fuzz-shaped property test in this crate pins.

use std::io::{Read, Write};
use std::time::Duration;

use forms_serve::ServeError;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FNET";
/// Wire-protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Largest accepted payload (16 MiB) — bounds per-connection memory and
/// rejects absurd length prefixes before any allocation happens.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Discriminant of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server inference request.
    Request = 0,
    /// Server → client successful inference response.
    Response = 1,
    /// Server → client typed rejection/failure status.
    Error = 2,
    /// Client → server telemetry snapshot request.
    TelemetryRequest = 3,
    /// Server → client telemetry snapshot (JSON payload).
    Telemetry = 4,
}

impl FrameKind {
    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Request),
            1 => Some(Self::Response),
            2 => Some(Self::Error),
            3 => Some(Self::TelemetryRequest),
            4 => Some(Self::Telemetry),
            _ => None,
        }
    }
}

/// Typed request-failure status carried by an Error frame — the wire form
/// of every [`ServeError`] variant, so admission shedding, deadline
/// expiry and degraded replicas surface as statuses on a live connection
/// instead of dropped sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// Admission queue full; request shed at the door.
    Shed = 1,
    /// Service is shutting down and no longer admits requests.
    ShuttingDown = 2,
    /// The deadline passed before a replica could execute the request.
    DeadlineExceeded = 3,
    /// The request was cancelled before execution.
    Cancelled = 4,
    /// The replica's engine failed while executing the batch.
    EngineFailed = 5,
    /// The owning replica was unhealthy and refused to return possibly
    /// corrupted results.
    Degraded = 6,
    /// The payload length does not match the service's sample shape; the
    /// Error frame's `expected`/`got` fields carry the two lengths.
    BadShape = 7,
}

impl WireStatus {
    /// Decodes a status byte.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Shed),
            2 => Some(Self::ShuttingDown),
            3 => Some(Self::DeadlineExceeded),
            4 => Some(Self::Cancelled),
            5 => Some(Self::EngineFailed),
            6 => Some(Self::Degraded),
            7 => Some(Self::BadShape),
            _ => None,
        }
    }
}

impl std::fmt::Display for WireStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Shed => "shed",
            Self::ShuttingDown => "shutting-down",
            Self::DeadlineExceeded => "deadline-exceeded",
            Self::Cancelled => "cancelled",
            Self::EngineFailed => "engine-failed",
            Self::Degraded => "degraded",
            Self::BadShape => "bad-shape",
        };
        f.write_str(s)
    }
}

/// Maps a serving-layer error to its wire status plus the BadShape
/// `expected`/`got` payload fields (zero for every other variant).
pub fn status_of(err: ServeError) -> (WireStatus, u32, u32) {
    match err {
        ServeError::Shed => (WireStatus::Shed, 0, 0),
        ServeError::ShuttingDown => (WireStatus::ShuttingDown, 0, 0),
        ServeError::DeadlineExceeded => (WireStatus::DeadlineExceeded, 0, 0),
        ServeError::Cancelled => (WireStatus::Cancelled, 0, 0),
        ServeError::EngineFailed => (WireStatus::EngineFailed, 0, 0),
        ServeError::Degraded => (WireStatus::Degraded, 0, 0),
        ServeError::BadShape { expected, got } => (
            WireStatus::BadShape,
            u32::try_from(expected).unwrap_or(u32::MAX),
            u32::try_from(got).unwrap_or(u32::MAX),
        ),
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server inference request.
    Request {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Latency budget in µs (0 = no deadline).
        deadline_us: u64,
        /// Flattened input sample.
        input: Vec<f32>,
    },
    /// Server → client successful response.
    Response {
        /// Echoed request id.
        id: u64,
        /// Server-side end-to-end latency in µs.
        latency_us: u64,
        /// Flattened output vector.
        output: Vec<f32>,
    },
    /// Server → client typed failure.
    Error {
        /// Echoed request id.
        id: u64,
        /// Why the request failed.
        status: WireStatus,
        /// Expected sample length (BadShape only, else 0).
        expected: u32,
        /// Submitted sample length (BadShape only, else 0).
        got: u32,
    },
    /// Client → server telemetry request.
    TelemetryRequest {
        /// Client-chosen id, echoed in the telemetry frame.
        id: u64,
    },
    /// Server → client telemetry snapshot.
    Telemetry {
        /// Echoed request id.
        id: u64,
        /// Pretty-printed JSON of the snapshot.
        json: String,
    },
}

impl Frame {
    /// The frame's kind byte.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Request { .. } => FrameKind::Request,
            Frame::Response { .. } => FrameKind::Response,
            Frame::Error { .. } => FrameKind::Error,
            Frame::TelemetryRequest { .. } => FrameKind::TelemetryRequest,
            Frame::Telemetry { .. } => FrameKind::Telemetry,
        }
    }

    /// The request id the frame carries or echoes.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Request { id, .. }
            | Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::TelemetryRequest { id }
            | Frame::Telemetry { id, .. } => *id,
        }
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let (id, meta) = match self {
            Frame::Request {
                id, deadline_us, ..
            } => (*id, *deadline_us),
            Frame::Response { id, latency_us, .. } => (*id, *latency_us),
            Frame::Error { id, .. } | Frame::Telemetry { id, .. } => (*id, 0),
            Frame::TelemetryRequest { id } => (*id, 0),
        };
        let payload_len = match self {
            Frame::Request { input, .. } => input.len() * 4,
            Frame::Response { output, .. } => output.len() * 4,
            Frame::Error { .. } => 12,
            Frame::TelemetryRequest { .. } => 0,
            Frame::Telemetry { json, .. } => json.len(),
        };
        out.reserve(HEADER_LEN + payload_len);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind() as u8);
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&meta.to_le_bytes());
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        match self {
            Frame::Request { input, .. } => {
                for v in input {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Response { output, .. } => {
                for v in output {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Error {
                status,
                expected,
                got,
                ..
            } => {
                out.push(*status as u8);
                out.extend_from_slice(&[0u8; 3]);
                out.extend_from_slice(&expected.to_le_bytes());
                out.extend_from_slice(&got.to_le_bytes());
            }
            Frame::TelemetryRequest { .. } => {}
            Frame::Telemetry { json, .. } => out.extend_from_slice(json.as_bytes()),
        }
    }

    /// Encodes into a fresh buffer (convenience for tests).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Why a byte sequence is not a frame (or could not be read).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
    /// The reserved header bytes are non-zero.
    BadReserved(u16),
    /// A non-Request/Response frame carried a non-zero meta field.
    BadMeta(u64),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Claimed payload length.
        len: u32,
    },
    /// The buffer ends inside the fixed header.
    TruncatedHeader {
        /// Bytes available.
        got: usize,
    },
    /// The buffer ends inside the declared payload.
    TruncatedPayload {
        /// Bytes the length prefix declared.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The payload length is invalid for the frame kind (e.g. a tensor
    /// payload not divisible by 4, or an Error payload that is not 12
    /// bytes).
    BadPayloadLen {
        /// The frame kind being decoded.
        kind: FrameKind,
        /// The offending payload length.
        len: u32,
    },
    /// Error-frame padding bytes are non-zero.
    BadPadding,
    /// The status byte of an Error frame names no known status.
    BadStatus(u8),
    /// A Telemetry payload is not valid UTF-8.
    BadUtf8,
    /// Reading from the transport failed before any frame byte arrived
    /// within the configured read timeout — the poll/idle signal, not a
    /// protocol violation.
    Timeout,
    /// The transport failed mid-frame.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
            Self::BadReserved(r) => write!(f, "non-zero reserved header field {r:#x}"),
            Self::BadMeta(m) => write!(f, "non-zero meta field {m} on a metaless frame"),
            Self::Oversized { len } => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD} cap")
            }
            Self::TruncatedHeader { got } => {
                write!(f, "truncated header: {got} of {HEADER_LEN} bytes")
            }
            Self::TruncatedPayload { needed, got } => {
                write!(f, "truncated payload: {got} of {needed} bytes")
            }
            Self::BadPayloadLen { kind, len } => {
                write!(f, "payload length {len} is invalid for {kind:?}")
            }
            Self::BadPadding => write!(f, "non-zero error-frame padding"),
            Self::BadStatus(s) => write!(f, "unknown wire status {s}"),
            Self::BadUtf8 => write!(f, "telemetry payload is not UTF-8"),
            Self::Timeout => write!(f, "read timed out before a frame arrived"),
            Self::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decodes one frame from the front of `bytes`, returning the frame and
/// the number of bytes consumed.
///
/// Total over arbitrary input: every malformed prefix yields a typed
/// [`WireError`]; no input panics or reads out of bounds.
///
/// # Errors
///
/// See [`WireError`] — truncation, bad magic/version/kind, oversized or
/// kind-invalid payload lengths, bad status bytes, non-UTF-8 telemetry.
pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::TruncatedHeader { got: bytes.len() });
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("sliced to length");
    let payload_len = decode_header_payload_len(header)?;
    let total = HEADER_LEN + payload_len as usize;
    if bytes.len() < total {
        return Err(WireError::TruncatedPayload {
            needed: payload_len as usize,
            got: bytes.len() - HEADER_LEN,
        });
    }
    let frame = decode_body(header, &bytes[HEADER_LEN..total])?;
    Ok((frame, total))
}

/// Validates the fixed fields of a header and returns the payload length.
fn decode_header_payload_len(header: &[u8; HEADER_LEN]) -> Result<u32, WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic(
            header[0..4].try_into().expect("4 bytes"),
        ));
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_code(header[5]).ok_or(WireError::BadKind(header[5]))?;
    let reserved = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(WireError::BadReserved(reserved));
    }
    let meta = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    if meta != 0 && !matches!(kind, FrameKind::Request | FrameKind::Response) {
        return Err(WireError::BadMeta(meta));
    }
    let payload_len = u32::from_le_bytes(header[24..28].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: payload_len });
    }
    validate_payload_len(kind, payload_len)?;
    Ok(payload_len)
}

/// Kind-specific payload length rules.
fn validate_payload_len(kind: FrameKind, len: u32) -> Result<(), WireError> {
    let ok = match kind {
        FrameKind::Request | FrameKind::Response => len.is_multiple_of(4),
        FrameKind::Error => len == 12,
        FrameKind::TelemetryRequest => len == 0,
        FrameKind::Telemetry => true,
    };
    if ok {
        Ok(())
    } else {
        Err(WireError::BadPayloadLen { kind, len })
    }
}

/// Decodes the payload of a length-validated header.
fn decode_body(header: &[u8; HEADER_LEN], payload: &[u8]) -> Result<Frame, WireError> {
    let kind = FrameKind::from_code(header[5]).expect("validated by the header pass");
    let id = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let meta = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let floats = |payload: &[u8]| -> Vec<f32> {
        payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    };
    Ok(match kind {
        FrameKind::Request => Frame::Request {
            id,
            deadline_us: meta,
            input: floats(payload),
        },
        FrameKind::Response => Frame::Response {
            id,
            latency_us: meta,
            output: floats(payload),
        },
        FrameKind::Error => {
            if payload[1..4] != [0, 0, 0] {
                return Err(WireError::BadPadding);
            }
            Frame::Error {
                id,
                status: WireStatus::from_code(payload[0])
                    .ok_or(WireError::BadStatus(payload[0]))?,
                expected: u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")),
                got: u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")),
            }
        }
        FrameKind::TelemetryRequest => Frame::TelemetryRequest { id },
        FrameKind::Telemetry => Frame::Telemetry {
            id,
            json: std::str::from_utf8(payload)
                .map_err(|_| WireError::BadUtf8)?
                .to_string(),
        },
    })
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed before
/// any byte of a new frame), [`WireError::Timeout`] when a configured
/// read timeout expired before a new frame began (so callers can poll
/// shutdown flags and idle clocks), and a typed error for everything
/// else — including timeouts *inside* a frame, which are transport
/// failures, not polls.
///
/// # Errors
///
/// See [`WireError`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        ReadProgress::Eof => return Ok(None),
        ReadProgress::Done => {}
    }
    let payload_len = decode_header_payload_len(&header)?;
    let mut payload = vec![0u8; payload_len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::TruncatedPayload {
                    needed: payload.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    decode_body(&header, &payload).map(Some)
}

enum ReadProgress {
    Done,
    Eof,
}

/// Fills `buf` completely, distinguishing a clean EOF / timeout before the
/// first byte from truncation or failure mid-way.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadProgress, WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadProgress::Eof),
            Ok(0) => return Err(WireError::TruncatedHeader { got: filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(WireError::Timeout)
            }
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(ReadProgress::Done)
}

/// Encodes `frame` through `scratch` (cleared and reused across calls)
/// and writes it fully, flushing the writer.
///
/// # Errors
///
/// Propagates transport write/flush failures.
pub fn write_frame<W: Write>(
    w: &mut W,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    scratch.clear();
    frame.encode_into(scratch);
    w.write_all(scratch)?;
    w.flush()
}

/// Converts a response latency to the µs wire field, saturating.
pub fn latency_to_us(latency: Duration) -> u64 {
    u64::try_from(latency.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let (decoded, consumed) = decode(&bytes).expect("well-formed frame decodes");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
        // Stream reader agrees with the slice decoder.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(decoded));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Request {
            id: 7,
            deadline_us: 250_000,
            input: vec![0.0, -1.5, 3.25e-5, f32::MAX],
        });
        round_trip(Frame::Request {
            id: u64::MAX,
            deadline_us: 0,
            input: vec![],
        });
        round_trip(Frame::Response {
            id: 8,
            latency_us: 1_234,
            output: vec![1.0; 128],
        });
        round_trip(Frame::Error {
            id: 9,
            status: WireStatus::BadShape,
            expected: 1152,
            got: 3,
        });
        round_trip(Frame::Error {
            id: 10,
            status: WireStatus::Degraded,
            expected: 0,
            got: 0,
        });
        round_trip(Frame::TelemetryRequest { id: 11 });
        round_trip(Frame::Telemetry {
            id: 12,
            json: "{\n  \"completed\": 3\n}".to_string(),
        });
    }

    #[test]
    fn every_serve_error_maps_to_a_distinct_status() {
        let errors = [
            ServeError::Shed,
            ServeError::ShuttingDown,
            ServeError::DeadlineExceeded,
            ServeError::Cancelled,
            ServeError::EngineFailed,
            ServeError::Degraded,
            ServeError::BadShape {
                expected: 4,
                got: 2,
            },
        ];
        let mut seen = Vec::new();
        for err in errors {
            let (status, expected, got) = status_of(err);
            assert!(!seen.contains(&status), "{status} mapped twice");
            assert_eq!(WireStatus::from_code(status as u8), Some(status));
            if let ServeError::BadShape { .. } = err {
                assert_eq!((expected, got), (4, 2));
            } else {
                assert_eq!((expected, got), (0, 0));
            }
            seen.push(status);
        }
    }

    #[test]
    fn decode_rejects_each_header_field_violation() {
        let good = Frame::TelemetryRequest { id: 3 }.encode();
        let mutate = |at: usize, to: u8| {
            let mut bytes = good.clone();
            bytes[at] = to;
            decode(&bytes).unwrap_err()
        };
        assert!(matches!(mutate(0, b'X'), WireError::BadMagic(_)));
        assert_eq!(mutate(4, 9), WireError::BadVersion(9));
        assert_eq!(mutate(5, 200), WireError::BadKind(200));
        assert_eq!(mutate(6, 1), WireError::BadReserved(1));
        assert_eq!(mutate(16, 1), WireError::BadMeta(1));
        assert_eq!(
            mutate(24, 4),
            WireError::BadPayloadLen {
                kind: FrameKind::TelemetryRequest,
                len: 4
            }
        );
    }

    #[test]
    fn decode_rejects_truncation_and_oversized_lengths() {
        let bytes = Frame::Request {
            id: 1,
            deadline_us: 0,
            input: vec![1.0, 2.0],
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            if cut < HEADER_LEN {
                assert_eq!(err, WireError::TruncatedHeader { got: cut });
            } else {
                assert_eq!(
                    err,
                    WireError::TruncatedPayload {
                        needed: 8,
                        got: cut - HEADER_LEN
                    }
                );
            }
        }
        let mut oversized = bytes;
        oversized[24..28].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            decode(&oversized).unwrap_err(),
            WireError::Oversized {
                len: MAX_PAYLOAD + 1
            }
        );
    }

    #[test]
    fn error_frame_payload_is_strictly_validated() {
        let good = Frame::Error {
            id: 1,
            status: WireStatus::Shed,
            expected: 0,
            got: 0,
        }
        .encode();
        let mut bad_status = good.clone();
        bad_status[HEADER_LEN] = 99;
        assert_eq!(decode(&bad_status).unwrap_err(), WireError::BadStatus(99));
        let mut bad_pad = good.clone();
        bad_pad[HEADER_LEN + 2] = 7;
        assert_eq!(decode(&bad_pad).unwrap_err(), WireError::BadPadding);
        // A request-kind payload must be float-aligned.
        let mut misaligned = Frame::Request {
            id: 1,
            deadline_us: 0,
            input: vec![1.0],
        }
        .encode();
        misaligned[24..28].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(
            decode(&misaligned[..HEADER_LEN + 3]).unwrap_err(),
            WireError::BadPayloadLen {
                kind: FrameKind::Request,
                len: 3
            }
        );
    }

    #[test]
    fn telemetry_payload_must_be_utf8() {
        let mut bytes = Frame::Telemetry {
            id: 2,
            json: "ab".to_string(),
        }
        .encode();
        bytes[HEADER_LEN] = 0xFF;
        assert_eq!(decode(&bytes).unwrap_err(), WireError::BadUtf8);
    }
}
