//! The blocking TCP front-end: N connections multiplexed onto one
//! `forms-serve` admission queue.
//!
//! [`serve_net`] wraps [`forms_serve::serve`] with a loopback-friendly
//! listener:
//!
//! ```text
//!  TcpListener ── acceptor ──► per-connection reader ──► sync_channel ──► writer
//!                                │  submit() → Ticket        (bounded        │
//!                                ▼                            in-flight)     ▼
//!                            ServiceHandle ◄──────────────── Ticket::wait ── TcpStream
//! ```
//!
//! Each accepted connection gets a **reader** thread (decodes frames,
//! submits to the admission queue) and a **writer** thread (waits tickets
//! in request order, encodes responses). Between them sits a bounded
//! [`mpsc::sync_channel`]: when `max_in_flight` requests from one
//! connection are unresolved, the reader blocks, the kernel socket buffer
//! fills, and the client's `write` stalls — backpressure all the way to
//! the sender without unbounded buffering anywhere.
//!
//! Rejections are *statuses, not disconnects*: a shed, expired, or
//! degraded request comes back as an Error frame with a typed
//! [`WireStatus`] on the same live
//! connection. Only protocol violations (bad magic, oversized lengths,
//! truncated frames) drop the connection.
//!
//! Shutdown is a drop guard mirroring the serving core's: when the client
//! closure returns, the guard flips the shutdown flag, nudges the
//! blocking `accept` with a loopback dummy connection, and readers stop
//! admitting — but every in-flight ticket is still waited and its
//! response written before the connection closes, so a request that made
//! it into the queue always gets a frame back.

use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::Scope;
use std::time::{Duration, Instant};

use forms_exec::{CrossbarEngine, Executor, FaultableEngine};
use forms_serve::{
    FaultInjector, ResilientConfig, ServeConfig, ServeError, Server, ServerBuilder, ServiceHandle,
    TelemetrySnapshot, Ticket,
};

use crate::protocol::{
    latency_to_us, read_frame, status_of, write_frame, Frame, WireError, WireStatus,
};

/// Front-end sizing and timeout policy. Purely transport-level: the
/// wrapped serving core is sized by its own [`ServeConfig`], passed
/// separately, so a knob like the deadline or queue bound exists in
/// exactly one place.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Address to bind; port 0 picks an ephemeral port (the bound address
    /// is reported by [`NetHandle::addr`]).
    pub bind: SocketAddr,
    /// Connections accepted concurrently; further accepts are closed
    /// immediately until a slot frees.
    pub max_connections: usize,
    /// Unresolved requests allowed per connection before its reader
    /// blocks (the backpressure window).
    pub max_in_flight: usize,
    /// Socket read timeout — the poll granularity at which readers check
    /// the shutdown flag and the idle clock.
    pub read_timeout: Duration,
    /// Drop a connection that has sent no frame for this long; `None`
    /// keeps idle connections open until shutdown.
    pub idle_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            max_connections: 64,
            max_in_flight: 32,
            read_timeout: Duration::from_millis(50),
            idle_timeout: None,
        }
    }
}

/// A contradiction or impossibility in a [`NetConfig`], reported by
/// [`NetConfig::validate`] before any socket is bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetConfigError {
    /// `max_connections` is zero — every accept would be refused.
    ZeroConnections,
    /// `max_in_flight` is zero — a reader could never admit a request.
    ZeroInFlight,
    /// `read_timeout` is zero — readers would spin instead of polling.
    ZeroReadTimeout,
    /// The idle timeout is shorter than the read timeout, so the very
    /// first quiet poll tick would already count as "idle too long" and
    /// drop the connection.
    IdleShorterThanPoll {
        /// The configured idle timeout, in microseconds.
        idle_us: u128,
        /// The configured read timeout, in microseconds.
        read_us: u128,
    },
}

impl std::fmt::Display for NetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroConnections => write!(f, "max_connections must be positive"),
            Self::ZeroInFlight => write!(f, "max_in_flight must be positive"),
            Self::ZeroReadTimeout => write!(f, "read_timeout must be positive"),
            Self::IdleShorterThanPoll { idle_us, read_us } => write!(
                f,
                "idle timeout {idle_us}µs is shorter than the {read_us}µs read poll, \
                 so every idle connection would drop at its first quiet tick"
            ),
        }
    }
}

impl std::error::Error for NetConfigError {}

impl NetConfig {
    /// Rejects impossible or contradictory front-end settings with a
    /// typed error (the serving core's knobs are validated separately by
    /// [`ServerBuilder::validate`]).
    ///
    /// # Errors
    ///
    /// The first [`NetConfigError`] found, in field order.
    pub fn validate(&self) -> Result<(), NetConfigError> {
        if self.max_connections == 0 {
            return Err(NetConfigError::ZeroConnections);
        }
        if self.max_in_flight == 0 {
            return Err(NetConfigError::ZeroInFlight);
        }
        if self.read_timeout.is_zero() {
            return Err(NetConfigError::ZeroReadTimeout);
        }
        if let Some(idle) = self.idle_timeout {
            if idle < self.read_timeout {
                return Err(NetConfigError::IdleShorterThanPoll {
                    idle_us: idle.as_micros(),
                    read_us: self.read_timeout.as_micros(),
                });
            }
        }
        Ok(())
    }
}

/// The client closure's view of the running front-end.
#[derive(Clone, Debug)]
pub struct NetHandle {
    addr: SocketAddr,
    service: ServiceHandle,
    active: Arc<AtomicUsize>,
}

impl NetHandle {
    /// The bound listen address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process handle the front-end multiplexes onto — usable for
    /// hybrid workloads that mix socket and in-process submissions.
    pub fn service(&self) -> &ServiceHandle {
        &self.service
    }

    /// Current telemetry snapshot of the wrapped service.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.service.telemetry()
    }

    /// Connections currently being served (racy snapshot).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }
}

/// Network-facing serving modes for [`ServerBuilder`] — the same builder
/// that launches in-process serving grows [`run_net`](Self::run_net) and
/// [`run_net_resilient`](Self::run_net_resilient) when `forms-net` is in
/// scope, so every mode shares one configuration surface.
pub trait NetServerExt {
    /// Runs the serving core and a TCP front-end over it for the duration
    /// of `client`, then drains both.
    ///
    /// The closure may connect [`NetClient`](crate::NetClient)s to
    /// [`NetHandle::addr`] (from threads it spawns) and/or submit
    /// in-process through [`NetHandle::service`]. On return, the listener
    /// shuts down, in-flight requests drain to their connections, and the
    /// final telemetry snapshot is returned alongside the closure's
    /// result.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen socket cannot be created; the
    /// service is not started in that case.
    ///
    /// # Panics
    ///
    /// As [`ServerBuilder::run`] (zero replicas/capacity/batch), plus if
    /// `net.max_connections` or `net.max_in_flight` is zero.
    fn run_net<E, R>(
        &self,
        executor: &Executor<E>,
        sample_dims: &[usize],
        net: &NetConfig,
        client: impl FnOnce(&NetHandle) -> R,
    ) -> std::io::Result<(R, TelemetrySnapshot)>
    where
        E: CrossbarEngine,
        E::Stats: Sync;

    /// The resilient sibling of [`run_net`](Self::run_net): wraps
    /// [`ServerBuilder::run_resilient`], so the client closure can poison
    /// replicas while socket traffic is in flight and watch `Degraded`
    /// surface as wire statuses.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen socket cannot be created.
    ///
    /// # Panics
    ///
    /// As [`ServerBuilder::run_resilient`], plus if `net.max_connections`
    /// or `net.max_in_flight` is zero.
    fn run_net_resilient<E, R>(
        &self,
        pristine: &Executor<E>,
        sample_dims: &[usize],
        net: &NetConfig,
        client: impl FnOnce(&NetHandle, &FaultInjector<'_>) -> R,
    ) -> std::io::Result<(R, TelemetrySnapshot)>
    where
        E: FaultableEngine,
        E::Stats: Sync;
}

impl NetServerExt for ServerBuilder {
    fn run_net<E, R>(
        &self,
        executor: &Executor<E>,
        sample_dims: &[usize],
        net: &NetConfig,
        client: impl FnOnce(&NetHandle) -> R,
    ) -> std::io::Result<(R, TelemetrySnapshot)>
    where
        E: CrossbarEngine,
        E::Stats: Sync,
    {
        let listener = bind(net)?;
        Ok(self.run(executor, sample_dims, |service| {
            front_end(&listener, service, net, client)
        }))
    }

    fn run_net_resilient<E, R>(
        &self,
        pristine: &Executor<E>,
        sample_dims: &[usize],
        net: &NetConfig,
        client: impl FnOnce(&NetHandle, &FaultInjector<'_>) -> R,
    ) -> std::io::Result<(R, TelemetrySnapshot)>
    where
        E: FaultableEngine,
        E::Stats: Sync,
    {
        let listener = bind(net)?;
        Ok(
            self.run_resilient(pristine, sample_dims, |service, injector| {
                front_end(&listener, service, net, |handle| client(handle, injector))
            }),
        )
    }
}

/// Runs the serving core and a TCP front-end over it for the duration of
/// `client` — the function form of [`NetServerExt::run_net`], kept as a
/// thin wrapper so pre-builder callers read naturally.
///
/// # Errors
///
/// Returns the bind error if the listen socket cannot be created; the
/// service is not started in that case.
///
/// # Panics
///
/// As [`NetServerExt::run_net`].
pub fn serve_net<E, R>(
    executor: &Executor<E>,
    sample_dims: &[usize],
    serve: &ServeConfig,
    net: &NetConfig,
    client: impl FnOnce(&NetHandle) -> R,
) -> std::io::Result<(R, TelemetrySnapshot)>
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    Server::builder()
        .config(*serve)
        .run_net(executor, sample_dims, net, client)
}

/// The resilient sibling of [`serve_net`] — the function form of
/// [`NetServerExt::run_net_resilient`], kept as a thin wrapper.
///
/// # Errors
///
/// Returns the bind error if the listen socket cannot be created.
///
/// # Panics
///
/// As [`NetServerExt::run_net_resilient`].
pub fn serve_net_resilient<E, R>(
    pristine: &Executor<E>,
    sample_dims: &[usize],
    config: &ResilientConfig,
    net: &NetConfig,
    client: impl FnOnce(&NetHandle, &FaultInjector<'_>) -> R,
) -> std::io::Result<(R, TelemetrySnapshot)>
where
    E: FaultableEngine,
    E::Stats: Sync,
{
    Server::builder()
        .config(config.serve)
        .health(config.policy)
        .run_net_resilient(pristine, sample_dims, net, client)
}

fn bind(config: &NetConfig) -> std::io::Result<TcpListener> {
    assert!(config.max_connections > 0, "need at least one connection");
    assert!(
        config.max_in_flight > 0,
        "in-flight window must be positive"
    );
    TcpListener::bind(config.bind)
}

/// Begins listener shutdown when dropped (even if the client closure
/// panics): flips the shutdown flag, switches the listener to
/// non-blocking so the acceptor can tell "backlog empty" from "waiting",
/// and wakes the blocking `accept` with a throwaway loopback connection.
/// The acceptor then drains connections already in the kernel backlog —
/// abandoning them would reset peers that connected before shutdown —
/// and exits at the first empty accept.
struct ListenerGuard<'a> {
    shutdown: &'a AtomicBool,
    listener: &'a TcpListener,
    addr: SocketAddr,
}

impl Drop for ListenerGuard<'_> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = self.listener.set_nonblocking(true);
        // `accept` has no portable timeout, and switching to non-blocking
        // does not wake a thread already parked in it; the throwaway
        // connection does. If the connect fails the listener is already
        // gone, which is fine.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Accept loop plus per-connection threads, scoped so every handler joins
/// before the wrapped service begins its own drain.
fn front_end<R>(
    listener: &TcpListener,
    service: &ServiceHandle,
    config: &NetConfig,
    client: impl FnOnce(&NetHandle) -> R,
) -> R {
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let shutdown = AtomicBool::new(false);
    let active = Arc::new(AtomicUsize::new(0));
    let handle = NetHandle {
        addr,
        service: service.clone(),
        active: Arc::clone(&active),
    };
    std::thread::scope(|scope| {
        let shutdown = &shutdown;
        scope.spawn({
            let active = Arc::clone(&active);
            move || acceptor(listener, scope, service, config, shutdown, active)
        });
        let guard = ListenerGuard {
            shutdown,
            listener,
            addr,
        };
        let result = client(&handle);
        drop(guard);
        result
    })
}

/// Accepts connections until shutdown, spawning each handler into the
/// enclosing scope (so the scope's exit joins them all).
fn acceptor<'scope>(
    listener: &TcpListener,
    scope: &'scope Scope<'scope, '_>,
    service: &'scope ServiceHandle,
    config: &'scope NetConfig,
    shutdown: &'scope AtomicBool,
    active: Arc<AtomicUsize>,
) {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            // Non-blocking accept on an empty backlog: only reachable
            // after the shutdown guard flipped the listener, and it means
            // every pre-shutdown connection has been drained.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(_) => continue,
        };
        if active.load(Ordering::Relaxed) >= config.max_connections {
            // Over capacity: refuse at the transport level. The client's
            // reconnect backoff handles retry pacing.
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        active.fetch_add(1, Ordering::Relaxed);
        let active = Arc::clone(&active);
        scope.spawn(move || {
            handle_connection(stream, service, config, shutdown);
            active.fetch_sub(1, Ordering::Relaxed);
        });
    }
}

/// Work item travelling from a connection's reader to its writer.
enum ConnItem {
    /// An admitted request: wait the ticket, then write the outcome.
    Ticket { id: u64, ticket: Ticket },
    /// A request rejected at admission: write the status immediately.
    Reject { id: u64, err: ServeError },
    /// A telemetry request: snapshot and write.
    Telemetry { id: u64 },
}

/// One connection: split reader/writer around a bounded channel.
fn handle_connection(
    stream: TcpStream,
    service: &ServiceHandle,
    config: &NetConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<ConnItem>(config.max_in_flight);
    // Set by the writer on a send failure so the reader stops admitting
    // requests whose responses could never be delivered.
    let dead = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let dead = &dead;
        let writer = scope.spawn(move || write_loop(write_half, rx, service, dead));
        read_loop(stream, tx, service, config, shutdown, dead);
        // Dropping `tx` (moved into read_loop) closed the channel; the
        // writer drains remaining tickets and exits.
        let _ = writer.join();
    });
}

/// Decodes frames and feeds the writer until EOF, shutdown, idle timeout,
/// a protocol violation, or writer death.
fn read_loop(
    mut stream: TcpStream,
    tx: mpsc::SyncSender<ConnItem>,
    service: &ServiceHandle,
    config: &NetConfig,
    shutdown: &AtomicBool,
    dead: &AtomicBool,
) {
    let mut last_frame = Instant::now();
    loop {
        if dead.load(Ordering::Acquire) {
            return;
        }
        // During shutdown the reader keeps consuming frames the peer
        // already sent — abandoning them unread would turn the close into
        // a TCP reset, destroying responses still in flight — and exits
        // at the first quiet read-timeout tick.
        let draining = shutdown.load(Ordering::Acquire);
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF: the peer is done.
            Ok(None) => return,
            Err(WireError::Timeout) => {
                if draining
                    || config
                        .idle_timeout
                        .is_some_and(|limit| last_frame.elapsed() >= limit)
                {
                    return;
                }
                continue;
            }
            // Protocol violation or transport failure: the stream can no
            // longer be framed, so the connection must drop.
            Err(_) => return,
        };
        last_frame = Instant::now();
        let item = match frame {
            Frame::Request {
                id,
                deadline_us,
                input,
            } => {
                let submitted = if deadline_us == 0 {
                    service.submit(input)
                } else {
                    service.submit_with_deadline(input, Duration::from_micros(deadline_us))
                };
                match submitted {
                    Ok(ticket) => ConnItem::Ticket { id, ticket },
                    Err(err) => ConnItem::Reject { id, err },
                }
            }
            Frame::TelemetryRequest { id } => ConnItem::Telemetry { id },
            // Server-bound streams carry only requests; a response-kind
            // frame is a protocol violation.
            Frame::Response { .. } | Frame::Error { .. } | Frame::Telemetry { .. } => return,
        };
        // Blocks when max_in_flight items are unresolved — the
        // backpressure window. Send fails only after the writer exited.
        if tx.send(item).is_err() {
            return;
        }
    }
}

/// Resolves work items in request order and writes one frame per item.
fn write_loop(
    stream: TcpStream,
    rx: mpsc::Receiver<ConnItem>,
    service: &ServiceHandle,
    dead: &AtomicBool,
) {
    let mut writer = BufWriter::new(stream);
    let mut scratch = Vec::new();
    for item in &rx {
        let frame = match item {
            ConnItem::Ticket { id, ticket } => match ticket.wait() {
                Ok(response) => Frame::Response {
                    id,
                    latency_us: latency_to_us(response.latency),
                    output: response.output,
                },
                Err(err) => error_frame(id, err),
            },
            ConnItem::Reject { id, err } => error_frame(id, err),
            ConnItem::Telemetry { id } => Frame::Telemetry {
                id,
                json: service.telemetry().to_json().pretty(),
            },
        };
        if write_frame(&mut writer, &frame, &mut scratch).is_err() {
            dead.store(true, Ordering::Release);
            // Keep draining: every remaining ticket must still be waited
            // so its slot resolves, even though the peer is gone.
            for item in rx.iter() {
                if let ConnItem::Ticket { ticket, .. } = item {
                    let _ = ticket.wait();
                }
            }
            return;
        }
    }
}

/// Encodes a serving-layer rejection as a typed Error frame.
fn error_frame(id: u64, err: ServeError) -> Frame {
    let (status, expected, got) = status_of(err);
    Frame::Error {
        id,
        status,
        expected,
        got,
    }
}

/// Wire statuses that indicate load-management behaviour (used by benches
/// to classify outcomes without string matching).
pub fn is_load_status(status: WireStatus) -> bool {
    matches!(
        status,
        WireStatus::Shed | WireStatus::DeadlineExceeded | WireStatus::Degraded
    )
}
