//! The client library: pipelined requests, reconnect-with-backoff,
//! per-request timeouts.
//!
//! [`NetClient`] is a blocking client for one `forms-net` server. Three
//! usage shapes:
//!
//! - **Call** — [`call`](NetClient::call) sends one request and blocks
//!   for its reply, transparently reconnecting (with exponential
//!   backoff) and resending once if the connection drops mid-call.
//! - **Pipeline** — [`send`](NetClient::send) /
//!   [`recv`](NetClient::recv) keep several requests in flight on one
//!   connection; replies arrive in request order (the server writes them
//!   FIFO per connection).
//! - **Split** — [`split`](NetClient::split) clones the socket into an
//!   independently-owned [`NetSender`]/[`NetReceiver`] pair so an
//!   open-loop load generator can submit from one thread while another
//!   drains replies.
//!
//! A rejection ([`WireStatus`]) is a *normal reply*, surfaced in
//! [`NetReply::outcome`] — only transport and protocol failures are
//! [`ClientError`]s.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use forms_serve::{json, TelemetrySnapshot};

use crate::protocol::{read_frame, write_frame, Frame, WireError, WireStatus};

/// Connection and retry policy for a [`NetClient`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Connection attempts per connect/reconnect (≥ 1).
    pub connect_attempts: u32,
    /// Sleep before the second connection attempt.
    pub backoff: Duration,
    /// Growth factor of the backoff between attempts (`>= 1.0`).
    pub backoff_multiplier: f64,
    /// Socket read timeout while waiting for a reply; `None` blocks
    /// indefinitely. A reply slower than this fails the receive with
    /// [`ClientError::Timeout`].
    pub request_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_attempts: 5,
            backoff: Duration::from_millis(10),
            backoff_multiplier: 2.0,
            request_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Why a client operation failed (transport/protocol level — request
/// rejections are successful replies carrying a [`WireStatus`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting (including every backoff retry) failed.
    Connect(std::io::ErrorKind),
    /// The transport failed mid-operation.
    Io(std::io::ErrorKind),
    /// The server sent bytes that do not frame.
    Wire(WireError),
    /// No reply arrived within the configured request timeout.
    Timeout,
    /// The server closed the connection with replies outstanding.
    ServerClosed,
    /// The server sent a frame kind a client should never receive.
    UnexpectedFrame,
    /// A reply's echoed id does not match the oldest in-flight request.
    IdMismatch {
        /// Id the pipeline expected next.
        expected: u64,
        /// Id the server echoed.
        got: u64,
    },
    /// A telemetry frame's JSON did not parse into a snapshot.
    BadTelemetry(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Connect(kind) => write!(f, "connect failed: {kind:?}"),
            Self::Io(kind) => write!(f, "transport error: {kind:?}"),
            Self::Wire(err) => write!(f, "protocol error: {err}"),
            Self::Timeout => write!(f, "no reply within the request timeout"),
            Self::ServerClosed => write!(f, "server closed with replies outstanding"),
            Self::UnexpectedFrame => write!(f, "server sent a client-bound-invalid frame"),
            Self::IdMismatch { expected, got } => {
                write!(f, "reply id {got} does not match in-flight id {expected}")
            }
            Self::BadTelemetry(why) => write!(f, "telemetry frame did not parse: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One resolved request: the echoed id, the outcome, and the server-side
/// latency (zero for rejections).
#[derive(Clone, Debug, PartialEq)]
pub struct NetReply {
    /// The id echoed from the request.
    pub id: u64,
    /// Output vector on success, typed rejection status otherwise.
    pub outcome: Result<Vec<f32>, WireStatus>,
    /// Server-reported end-to-end latency (submission to batch
    /// completion), zero for rejections.
    pub server_latency: Duration,
}

impl NetReply {
    /// Whether the request produced an output.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// A blocking client for one `forms-net` server.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Ids of requests sent but not yet received, oldest first.
    in_flight: Vec<u64>,
    scratch: Vec<u8>,
}

impl NetClient {
    /// Connects to `addr`, retrying with exponential backoff per
    /// `config`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] with the final attempt's error kind after
    /// every attempt failed.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self, ClientError> {
        let stream = connect_with_backoff(addr, &config)?;
        let (reader, writer) = split_stream(stream, &config)?;
        Ok(Self {
            addr,
            config,
            reader,
            writer,
            next_id: 1,
            in_flight: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently in flight on the pipeline.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends one request and blocks for its reply.
    ///
    /// On a connection-level failure with an empty pipeline, reconnects
    /// (with backoff) and resends once — safe because inference is
    /// idempotent and the dropped connection's request died with it. With
    /// requests already in flight the error is surfaced instead, since
    /// resending would desynchronize the pipeline.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]. Rejections are `Ok` replies whose
    /// [`outcome`](NetReply::outcome) carries the status.
    pub fn call(
        &mut self,
        input: &[f32],
        deadline: Option<Duration>,
    ) -> Result<NetReply, ClientError> {
        let pipelined = !self.in_flight.is_empty();
        match self.try_call(input, deadline) {
            Err(ClientError::Io(_) | ClientError::ServerClosed) if !pipelined => {
                self.reconnect()?;
                self.try_call(input, deadline)
            }
            other => other,
        }
    }

    fn try_call(
        &mut self,
        input: &[f32],
        deadline: Option<Duration>,
    ) -> Result<NetReply, ClientError> {
        self.send(input, deadline)?;
        self.recv()
    }

    /// Sends one request without waiting for the reply (pipelining).
    /// Replies arrive in send order via [`recv`](Self::recv).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the transport write fails.
    pub fn send(&mut self, input: &[f32], deadline: Option<Duration>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame::Request {
            id,
            deadline_us: deadline.map_or(0, deadline_to_us),
            input: input.to_vec(),
        };
        write_frame(&mut self.writer, &frame, &mut self.scratch)
            .map_err(|e| ClientError::Io(e.kind()))?;
        self.in_flight.push(id);
        Ok(id)
    }

    /// Blocks for the oldest in-flight request's reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when no reply arrives within the request
    /// timeout; see [`ClientError`] for the rest.
    ///
    /// # Panics
    ///
    /// Panics if no request is in flight.
    pub fn recv(&mut self) -> Result<NetReply, ClientError> {
        assert!(!self.in_flight.is_empty(), "no request in flight");
        let expected = self.in_flight[0];
        let reply = recv_reply(&mut self.reader, expected)?;
        self.in_flight.remove(0);
        Ok(reply)
    }

    /// Requests a telemetry snapshot from the server.
    ///
    /// Must be called with an empty pipeline (the snapshot reply would
    /// otherwise interleave with inference replies).
    ///
    /// # Errors
    ///
    /// [`ClientError::BadTelemetry`] when the frame's JSON does not parse
    /// as a snapshot; see [`ClientError`] for transport failures.
    ///
    /// # Panics
    ///
    /// Panics if requests are in flight.
    pub fn telemetry(&mut self) -> Result<TelemetrySnapshot, ClientError> {
        assert!(
            self.in_flight.is_empty(),
            "telemetry() needs an empty pipeline"
        );
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Frame::TelemetryRequest { id },
            &mut self.scratch,
        )
        .map_err(|e| ClientError::Io(e.kind()))?;
        match read_reply_frame(&mut self.reader)? {
            Frame::Telemetry { id: got, json } => {
                if got != id {
                    return Err(ClientError::IdMismatch { expected: id, got });
                }
                let doc = json::parse(&json).map_err(ClientError::BadTelemetry)?;
                TelemetrySnapshot::from_json(&doc).map_err(ClientError::BadTelemetry)
            }
            _ => Err(ClientError::UnexpectedFrame),
        }
    }

    /// Splits the client into an independently-owned sender/receiver pair
    /// over the same connection, for open-loop load generation from two
    /// threads. The pipeline must be empty.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket cannot be cloned.
    ///
    /// # Panics
    ///
    /// Panics if requests are in flight.
    pub fn split(self) -> Result<(NetSender, NetReceiver), ClientError> {
        assert!(self.in_flight.is_empty(), "split() needs an empty pipeline");
        Ok((
            NetSender {
                writer: self.writer,
                next_id: self.next_id,
                scratch: self.scratch,
            },
            NetReceiver {
                reader: self.reader,
                next_id: self.next_id,
            },
        ))
    }

    /// Tears down the socket and dials again with backoff, resetting the
    /// pipeline (in-flight requests died with the old connection).
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = connect_with_backoff(self.addr, &self.config)?;
        let (reader, writer) = split_stream(stream, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        self.in_flight.clear();
        Ok(())
    }
}

/// The sending half of a split client: owns request-id allocation.
#[derive(Debug)]
pub struct NetSender {
    writer: BufWriter<TcpStream>,
    next_id: u64,
    scratch: Vec<u8>,
}

impl NetSender {
    /// Sends one request, returning its id. The matching reply arrives on
    /// the paired [`NetReceiver`] in send order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the transport write fails.
    pub fn send(&mut self, input: &[f32], deadline: Option<Duration>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame::Request {
            id,
            deadline_us: deadline.map_or(0, deadline_to_us),
            input: input.to_vec(),
        };
        write_frame(&mut self.writer, &frame, &mut self.scratch)
            .map_err(|e| ClientError::Io(e.kind()))?;
        Ok(id)
    }

    /// Half-closes the write side so the server sees EOF once the last
    /// request drains — lets the receiver distinguish "done" from a
    /// server crash.
    pub fn finish(self) {
        let _ = self.writer.get_ref().shutdown(std::net::Shutdown::Write);
    }
}

/// The receiving half of a split client: drains replies in send order.
#[derive(Debug)]
pub struct NetReceiver {
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl NetReceiver {
    /// Blocks for the next reply, verifying it matches the expected
    /// pipeline order.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn recv(&mut self) -> Result<NetReply, ClientError> {
        let reply = recv_reply(&mut self.reader, self.next_id)?;
        self.next_id += 1;
        Ok(reply)
    }
}

fn connect_with_backoff(addr: SocketAddr, config: &ClientConfig) -> Result<TcpStream, ClientError> {
    assert!(config.connect_attempts >= 1, "need at least one attempt");
    assert!(
        config.backoff_multiplier >= 1.0,
        "backoff must not shrink between attempts"
    );
    let mut backoff = config.backoff;
    let mut last = std::io::ErrorKind::NotConnected;
    for attempt in 0..config.connect_attempts {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = backoff.mul_f64(config.backoff_multiplier);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.kind(),
        }
    }
    Err(ClientError::Connect(last))
}

fn split_stream(
    stream: TcpStream,
    config: &ClientConfig,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), ClientError> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(config.request_timeout)
        .map_err(|e| ClientError::Io(e.kind()))?;
    let read_half = stream.try_clone().map_err(|e| ClientError::Io(e.kind()))?;
    Ok((BufReader::new(read_half), BufWriter::new(stream)))
}

/// Reads one client-bound frame, mapping timeouts and EOF to their typed
/// errors.
fn read_reply_frame(reader: &mut BufReader<TcpStream>) -> Result<Frame, ClientError> {
    match read_frame(reader) {
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err(ClientError::ServerClosed),
        Err(WireError::Timeout) => Err(ClientError::Timeout),
        Err(err) => Err(ClientError::Wire(err)),
    }
}

/// Reads and order-checks one inference reply.
fn recv_reply(reader: &mut BufReader<TcpStream>, expected: u64) -> Result<NetReply, ClientError> {
    let (got, outcome, latency_us) = match read_reply_frame(reader)? {
        Frame::Response {
            id,
            latency_us,
            output,
        } => (id, Ok(output), latency_us),
        Frame::Error { id, status, .. } => (id, Err(status), 0),
        Frame::Request { .. } | Frame::TelemetryRequest { .. } | Frame::Telemetry { .. } => {
            return Err(ClientError::UnexpectedFrame)
        }
    };
    if got != expected {
        return Err(ClientError::IdMismatch { expected, got });
    }
    Ok(NetReply {
        id: got,
        outcome,
        server_latency: Duration::from_micros(latency_us),
    })
}

/// Converts a deadline to the µs wire field, saturating and flooring at
/// 1 µs (0 means "no deadline" on the wire).
fn deadline_to_us(deadline: Duration) -> u64 {
    u64::try_from(deadline.as_micros())
        .unwrap_or(u64::MAX)
        .max(1)
}
