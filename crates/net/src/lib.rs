//! # forms-net
//!
//! A std-only TCP front-end for the `forms-serve` inference layer: the
//! subsystem that turns an in-process service into a network service a
//! load generator (or another process) can drive over real sockets.
//!
//! ```text
//!  NetClient ──frames──► TcpListener ──► reader/writer per connection
//!     │                                     │ bounded in-flight window
//!     ▼                                     ▼
//!  NetReply ◄──frames── BufWriter ◄── ServiceHandle (forms-serve)
//! ```
//!
//! The pieces, each its own module:
//!
//! - [`protocol`]: the length-prefixed, versioned binary wire format —
//!   [`Frame`], [`WireStatus`] (one code per
//!   [`ServeError`](forms_serve::ServeError) variant), and a *total*
//!   decoder: arbitrary bytes yield a typed [`WireError`], never a panic.
//! - [`server`]: [`serve_net`] binds a blocking listener and multiplexes
//!   N connections onto one admission queue under `std::thread::scope`;
//!   per-connection reader/writer threads with a bounded in-flight window
//!   for backpressure; rejections return as wire statuses on the live
//!   connection; shutdown drains in-flight requests before the listener
//!   closes. [`serve_net_resilient`] is the fault-tolerant sibling.
//! - [`client`]: [`NetClient`] — pipelined requests, per-request
//!   timeouts, reconnect-with-backoff, a telemetry fetch that parses the
//!   server's [`TelemetrySnapshot`](forms_serve::TelemetrySnapshot) JSON
//!   frame, and a [`split`](NetClient::split) sender/receiver pair for
//!   open-loop load generation.
//!
//! Everything is `std`-only and blocking: no async runtime, no external
//! crates, deterministic teardown via scoped threads and drop guards.
//!
//! # Example
//!
//! ```
//! use forms_net::{serve_net, ClientConfig, NetClient, NetConfig};
//! use forms_serve::ServeConfig;
//! # use forms_exec::Executor;
//! # let mut rng = forms_rng::StdRng::seed_from_u64(0);
//! # let mut net = forms_dnn::Network::new(vec![
//! #     forms_dnn::Layer::flatten(),
//! #     forms_dnn::Layer::linear(&mut rng, 16, 4),
//! # ]);
//! # net.for_each_weight_layer(&mut |wl| {
//! #     if let forms_dnn::WeightLayerMut::Linear(l) = wl {
//! #         l.set_weight_matrix(&forms_tensor::Tensor::from_fn(&[16, 4], |i| {
//! #             0.05 + (i % 9) as f32 * 0.1
//! #         }));
//! #     }
//! # });
//! # let exec = Executor::<forms_arch::MappedLayer>::map_network(
//! #     &net, &forms_arch::MappingConfig::paper(8), 16).unwrap();
//! let (serve, net_cfg) = (ServeConfig::default(), NetConfig::default());
//! let ((), telemetry) = serve_net(&exec, &[1, 4, 4], &serve, &net_cfg, |net| {
//!     let addr = net.addr();
//!     std::thread::scope(|s| {
//!         s.spawn(move || {
//!             let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
//!             let reply = client.call(&[0.5; 16], None).unwrap();
//!             assert_eq!(reply.outcome.unwrap().len(), 4);
//!         });
//!     });
//! })
//! .unwrap();
//! assert_eq!(telemetry.completed, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, ClientError, NetClient, NetReceiver, NetReply, NetSender};
pub use protocol::{Frame, FrameKind, WireError, WireStatus};
pub use server::{
    serve_net, serve_net_resilient, NetConfig, NetConfigError, NetHandle, NetServerExt,
};
