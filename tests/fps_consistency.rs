//! Integration: the FPS model, pipeline model and MVM statistics must tell
//! one consistent timing story.

use forms::arch::{FpsModel, LayerPerf, MappedLayer, MappingConfig, Pipeline, PipelineOp};
use forms::hwmodel::{McuConfig, ThroughputModel};
use forms::reram::CellSpec;
use forms::tensor::Tensor;

fn polarized_matrix(rows: usize, cols: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / 4) + c) % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0.1 + (i % 3) as f32 * 0.2)
    })
}

#[test]
fn fps_model_and_throughput_model_agree_on_relative_speed() {
    // Both models must rank ISAAC vs FORMS-fragment-8 identically for an
    // uncompressed dense layer.
    let layer = |_mcu: &McuConfig| LayerPerf {
        positions: 1024,
        crossbars: 64,
        input_cycles: 16.0,
    };
    let isaac_fps = FpsModel::new(McuConfig::isaac(), vec![layer(&McuConfig::isaac())]).fps();
    let forms_fps = FpsModel::new(McuConfig::forms(8), vec![layer(&McuConfig::forms(8))]).fps();
    let isaac_thr = ThroughputModel::baseline(McuConfig::isaac()).peak_gops();
    let forms_thr = ThroughputModel::baseline(McuConfig::forms(8)).peak_gops();
    let fps_ratio = forms_fps / isaac_fps;
    let thr_ratio = forms_thr / isaac_thr;
    assert!(
        (fps_ratio - thr_ratio).abs() / thr_ratio < 0.05,
        "FPS ratio {fps_ratio} vs throughput ratio {thr_ratio}"
    );
}

#[test]
fn measured_cycles_drive_the_fps_model_consistently() {
    // Run a real MVM, extract the average input cycles, and check that the
    // FPS model with that EIC is faster than with the full bit width by
    // exactly the cycle ratio.
    let config = MappingConfig {
        crossbar_dim: 16,
        fragment_size: 4,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    };
    let mapped = MappedLayer::map(&polarized_matrix(16, 4), config).unwrap();
    let codes: Vec<u32> = (0..16).map(|i| (i % 4) as u32).collect();
    let (_, stats) = mapped.matvec(&codes, 1.0);
    let mean_eic = stats.cycles as f64 / stats.fragments_total as f64;
    assert!(
        mean_eic < 8.0,
        "tiny inputs must have low EIC, got {mean_eic}"
    );

    let mk = |cycles: f64| {
        FpsModel::new(
            McuConfig::forms(8),
            vec![LayerPerf {
                positions: 64,
                crossbars: 8,
                input_cycles: cycles,
            }],
        )
        .fps()
    };
    let speedup = mk(mean_eic) / mk(8.0);
    assert!((speedup - 8.0 / mean_eic).abs() < 1e-9);
}

#[test]
fn pipeline_and_fps_model_agree_on_zero_skip_scaling() {
    // Long streams: pipeline total time ratio ≈ shift-cycle ratio, the same
    // factor the FPS model applies.
    let p = Pipeline::new(16, false);
    let n = 500;
    let full = p.run(&vec![PipelineOp { shift_cycles: 16 }; n]) as f64;
    let skipped = p.run(&vec![PipelineOp { shift_cycles: 10 }; n]) as f64;
    let pipeline_ratio = full / skipped;
    let fps_ratio = 16.0 / 10.0;
    assert!(
        (pipeline_ratio - fps_ratio).abs() < 0.05,
        "pipeline {pipeline_ratio} vs fps {fps_ratio}"
    );
}

#[test]
fn degenerate_forms_at_fragment_128_approaches_isaac_structure() {
    // With fragment = crossbar dim, FORMS activates whole columns like
    // ISAAC; one row group, so per-MVM time differs only by the ADC cycle.
    let forms128 = McuConfig {
        fragment_size: 128,
        ..McuConfig::forms(8)
    };
    let t_forms = ThroughputModel::baseline(forms128).mvm_time_ns();
    let t_isaac = ThroughputModel::baseline(McuConfig::isaac()).mvm_time_ns();
    let cycle_ratio = forms128.conversion_cycle_ns() / McuConfig::isaac().conversion_cycle_ns();
    assert!(((t_forms / t_isaac) - cycle_ratio).abs() < 1e-9);
}
