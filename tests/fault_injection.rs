//! Integration: post-map fault injection through the packed bit-plane
//! path, executor-level campaigns, and the output-range sentinels — the
//! invariants the graceful-degradation layer stands on (paper §V-E).
//!
//! The load-bearing property: mutating cells *after* mapping (stuck-at
//! campaigns, direct conductance writes) must be observed by the packed
//! hot path exactly as by the reference kernel, because the serving
//! layer's health checks read outputs produced by the packed path.

use forms::arch::{MappedLayer, MappingConfig};
use forms::baselines::IsaacLayer;
use forms::dnn::{Layer, Network, WeightLayerMut};
use forms::exec::{Executor, FaultCampaign};
use forms::reram::CellSpec;
use forms::rng::StdRng;
use forms::tensor::Tensor;

fn polarized_matrix() -> Tensor {
    Tensor::from_fn(&[16, 4], |i| {
        let (r, c) = (i / 4, i % 4);
        let sign = if ((r / 4) + c) % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0.1 + (i % 5) as f32 * 0.1)
    })
}

fn config() -> MappingConfig {
    MappingConfig {
        crossbar_dim: 16,
        fragment_size: 4,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    }
}

fn input_codes() -> Vec<u32> {
    (0..16).map(|i| (i * 13 % 256) as u32).collect()
}

#[test]
fn forms_post_map_writes_flow_through_packed_path() {
    let mut mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    let (clean, _) = mapped.matvec(&input_codes(), 1.0);
    // Pin a handful of cells high by hand, exactly as a fault model does.
    for xb in mapped.crossbars_mut() {
        let g_max = xb.spec().g_max();
        for g in xb.conductances_mut().iter_mut().step_by(7) {
            *g = g_max;
        }
        xb.commit_writes();
    }
    let (packed, _) = mapped.matvec(&input_codes(), 1.0);
    let (reference, _) = mapped.matvec_reference(&input_codes(), 1.0);
    assert_eq!(
        packed, reference,
        "packed path must see post-map writes bitwise like the reference"
    );
    assert_ne!(packed, clean, "the writes must actually move the outputs");
}

#[test]
fn isaac_post_map_writes_flow_through_packed_path() {
    let mut mapped =
        IsaacLayer::map_with(&polarized_matrix(), 8, 8, 16, CellSpec::paper_2bit()).unwrap();
    let (clean, _) = mapped.matvec(&input_codes(), 1.0);
    for xb in mapped.crossbars_mut() {
        let g_max = xb.spec().g_max();
        for g in xb.conductances_mut().iter_mut().step_by(5) {
            *g = g_max;
        }
        xb.commit_writes();
    }
    let (packed, _) = mapped.matvec(&input_codes(), 1.0);
    let (reference, _) = mapped.matvec_reference(&input_codes(), 1.0);
    assert_eq!(packed, reference);
    assert_ne!(packed, clean);
}

#[test]
#[should_panic(expected = "stale packed read")]
fn uncommitted_writes_poison_the_packed_path() {
    let mut mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    // Mutate without commit_writes(): the hoisted dequant table is stale,
    // so the packed read must refuse rather than silently serve old cells.
    mapped.crossbars_mut()[0].conductances_mut()[0] = 0.0;
    let _ = mapped.matvec(&input_codes(), 1.0);
}

fn mapped_executor(weights: &Tensor) -> Executor<MappedLayer> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, 16, 4)]);
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(weights);
        }
    });
    Executor::map_network(&net, &config(), 8).unwrap()
}

#[test]
fn executor_campaigns_update_health_and_replay_deterministically() {
    let pristine = mapped_executor(&polarized_matrix());
    let x = Tensor::from_fn(&[1, 16], |i| 0.1 + (i % 7) as f32 * 0.1);
    let clean = pristine.clone().forward(&x).into_vec();
    assert_eq!(pristine.health().faulted_cells, 0);

    let campaign = FaultCampaign::stuck_at(42, 0.2, 0.2);
    let mut faulty = pristine.clone();
    let report = faulty.inject_faults(&campaign, 7);
    assert!(report.stuck() > 0, "heavy campaign must hit cells");
    let health = faulty.health();
    assert_eq!(health.faulted_cells, report.stuck() as u64);
    assert!(health.fault_density() > 0.0);
    let out = faulty.forward(&x).into_vec();
    assert_ne!(out, clean, "injected faults must corrupt outputs");

    // Same campaign + salt on a fresh clone reproduces the same silicon.
    let mut replay = pristine.clone();
    replay.inject_faults(&campaign, 7);
    assert_eq!(replay.forward(&x).into_vec(), out);
    // A different salt draws different faulty cells.
    let mut other = pristine.clone();
    other.inject_faults(&campaign, 8);
    assert_ne!(other.forward(&x).into_vec(), out);
}

#[test]
fn stuck_high_campaign_trips_the_output_sentinels() {
    // Single-polarity weights: stuck-high can only inflate column
    // currents past the pristine ceiling, which clean silicon can never
    // exceed — exactly what the sentinel is specified to catch.
    let positive = Tensor::from_fn(&[16, 4], |i| 0.1 + (i % 5) as f32 * 0.1);
    let pristine = mapped_executor(&positive);
    let x = Tensor::from_vec(vec![1.0; 16], &[1, 16]);
    let mut clean = pristine.clone();
    clean.forward(&x);
    assert_eq!(clean.sentinel_violations(), 0, "clean run must not trip");

    let mut faulty = pristine.clone();
    faulty.inject_faults(&FaultCampaign::stuck_at(3, 0.0, 0.9), 0);
    faulty.forward(&x);
    assert!(
        faulty.sentinel_violations() > 0,
        "saturated array must push outputs past the nominal ceiling"
    );
}
