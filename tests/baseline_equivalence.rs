//! Cross-crate integration: the FORMS polarized mapping, ISAAC offset
//! encoding and PRIME-style splitting all compute the same products on the
//! same `forms-reram` substrate — with exactly the cost differences the
//! paper describes.

use forms::arch::{MappedLayer, MappingConfig};
use forms::baselines::{IsaacLayer, SplitLayer};
use forms::reram::CellSpec;
use forms::tensor::{QuantizedTensor, Tensor};

/// A fragment-polarized matrix (columns alternate fragment signs).
fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((i * 13) % 11) as f32 / 16.0)
    })
}

fn mapping_config(fragment: usize) -> MappingConfig {
    MappingConfig {
        crossbar_dim: 16,
        fragment_size: fragment,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    }
}

#[test]
fn all_three_mappings_agree_on_polarized_weights() {
    let w = polarized_matrix(16, 4, 4);
    let x = Tensor::from_fn(&[16], |i| (i as f32 * 0.19).fract());
    let q = QuantizedTensor::quantize(&x, 8);

    let forms = MappedLayer::map(&w, mapping_config(4)).expect("polarized");
    let (forms_out, _) = forms.matvec(q.codes(), q.spec().scale());

    let isaac = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
    let (isaac_out, _) = isaac.matvec(q.codes(), q.spec().scale());

    let split = SplitLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit());
    let split_out = split.matvec(q.codes(), q.spec().scale());

    // All three compute W^T x up to their (slightly different) weight
    // quantization grids.
    let reference = w.transpose().matvec(q.dequantize().data());
    for c in 0..4 {
        let tol = 0.06 * reference[c].abs().max(1.0);
        assert!(
            (forms_out[c] - reference[c]).abs() < tol,
            "FORMS col {c}: {} vs {}",
            forms_out[c],
            reference[c]
        );
        assert!(
            (isaac_out[c] - reference[c]).abs() < tol,
            "ISAAC col {c}: {} vs {}",
            isaac_out[c],
            reference[c]
        );
        assert!(
            (split_out[c] - reference[c]).abs() < tol,
            "Split col {c}: {} vs {}",
            split_out[c],
            reference[c]
        );
    }
}

#[test]
fn isaac_handles_arbitrary_signs_that_forms_rejects() {
    // Row-alternating signs violate every fragment of 4.
    let w = Tensor::from_fn(&[8, 2], |i| if (i / 2) % 2 == 0 { 0.5 } else { -0.5 });
    assert!(MappedLayer::map(&w, mapping_config(4)).is_err());
    let isaac = IsaacLayer::map_with(&w, 8, 8, 8, CellSpec::paper_2bit()).expect("map");
    let (out, _) = isaac.matvec(&[1; 8], 1.0);
    let reference = w.transpose().matvec(&[1.0; 8]);
    for c in 0..2 {
        assert!(
            (out[c] - reference[c]).abs() < 0.05,
            "{} vs {}",
            out[c],
            reference[c]
        );
    }
}

#[test]
fn cost_ordering_matches_the_paper() {
    // Same dense polarized matrix: split pays 2× crossbars; FORMS pays sign
    // bits instead; ISAAC pays offset subtractions.
    let w = polarized_matrix(16, 4, 4);
    let forms = MappedLayer::map(&w, mapping_config(4)).expect("polarized");
    let split = SplitLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit());
    let isaac = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");

    assert_eq!(
        split.crossbar_count(),
        2 * forms.crossbar_count(),
        "split mapping must double the arrays"
    );
    assert_eq!(isaac.crossbar_count(), forms.crossbar_count());

    // ISAAC's correction work exists and scales with input ones; FORMS has
    // none (sign indicator is applied for free during accumulation).
    let x = Tensor::from_fn(&[16], |i| (i % 3) as f32);
    let q = QuantizedTensor::quantize(&x, 8);
    let (_, isaac_stats) = isaac.matvec(q.codes(), q.spec().scale());
    assert!(isaac_stats.offset_subtractions > 0);

    // FORMS sign bits: one per fragment per column.
    assert_eq!(forms.sign_bits(), (16 / 4) * 4);
}

#[test]
fn zero_skipping_advantage_is_unique_to_forms() {
    let w = polarized_matrix(16, 2, 4);
    // Inputs with tiny magnitudes: FORMS skips, ISAAC cannot.
    let codes: Vec<u32> = (0..16).map(|i| (i % 2) as u32).collect();
    let forms = MappedLayer::map(&w, mapping_config(4)).expect("polarized");
    let (_, fs) = forms.matvec(&codes, 1.0);
    let isaac = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
    let (_, is) = isaac.matvec(&codes, 1.0);
    assert!(fs.cycles < fs.cycles_without_skip, "FORMS saved nothing");
    assert_eq!(is.cycles, 8, "ISAAC always pays the full bit width");
}
