//! Integration: device-variation and fault injection through the full
//! mixed-signal path (paper §V-E at the crossbar level).

use forms::arch::{MappedLayer, MappingConfig};
use forms::reram::{CellSpec, LogNormalVariation, StuckAtFault, StuckAtKind};
use forms::rng::StdRng;
use forms::tensor::Tensor;

fn polarized_matrix() -> Tensor {
    Tensor::from_fn(&[16, 4], |i| {
        let (r, c) = (i / 4, i % 4);
        let sign = if ((r / 4) + c) % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0.1 + (i % 5) as f32 * 0.1)
    })
}

fn config() -> MappingConfig {
    MappingConfig {
        crossbar_dim: 16,
        fragment_size: 4,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    }
}

fn output_error(mapped: &MappedLayer, clean: &[f32]) -> f32 {
    let codes: Vec<u32> = (0..16).map(|i| (i * 13 % 256) as u32).collect();
    let (noisy, _) = mapped.matvec(&codes, 1.0);
    noisy
        .iter()
        .zip(clean)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

#[test]
fn zero_sigma_variation_is_exact() {
    let mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    let codes: Vec<u32> = (0..16).map(|i| (i * 13 % 256) as u32).collect();
    let (clean, _) = mapped.matvec(&codes, 1.0);
    let mut perturbed = mapped.clone();
    let mut rng = StdRng::seed_from_u64(0);
    let v = LogNormalVariation::new(0.0, 0.0);
    for xb in perturbed.crossbars_mut() {
        v.apply(xb, &mut rng);
    }
    assert_eq!(output_error(&perturbed, &clean), 0.0);
}

#[test]
fn error_grows_with_sigma_on_average() {
    let mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    let codes: Vec<u32> = (0..16).map(|i| (i * 13 % 256) as u32).collect();
    let (clean, _) = mapped.matvec(&codes, 1.0);
    let mean_error = |sigma: f64| -> f32 {
        let mut total = 0.0;
        for run in 0..8 {
            let mut rng = StdRng::seed_from_u64(100 + run);
            let mut p = mapped.clone();
            let v = LogNormalVariation::new(0.0, sigma);
            for xb in p.crossbars_mut() {
                v.apply(xb, &mut rng);
            }
            total += output_error(&p, &clean);
        }
        total / 8.0
    };
    let small = mean_error(0.05);
    let large = mean_error(0.5);
    assert!(
        large > small,
        "error should grow with sigma: {small} vs {large}"
    );
}

#[test]
fn paper_sigma_causes_bounded_disturbance() {
    // At the paper's σ = 0.1 most cells still round to their programmed
    // code, so outputs move but stay close.
    let mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    let codes: Vec<u32> = (0..16).map(|i| (i * 13 % 256) as u32).collect();
    let (clean, _) = mapped.matvec(&codes, 1.0);
    let scale = clean.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
    let mut rng = StdRng::seed_from_u64(3);
    let mut p = mapped.clone();
    let v = LogNormalVariation::paper();
    for xb in p.crossbars_mut() {
        v.apply(xb, &mut rng);
    }
    let err = output_error(&p, &clean);
    assert!(
        err / scale < 0.5,
        "σ=0.1 disturbance too large: {}",
        err / scale
    );
}

#[test]
fn stuck_at_low_faults_only_shrink_magnitudes() {
    let mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    let mut faulty = mapped.clone();
    let mut rng = StdRng::seed_from_u64(9);
    let fault = StuckAtFault::new(1.0, StuckAtKind::Low);
    let mut hits = 0;
    for xb in faulty.crossbars_mut() {
        hits += fault.apply(xb, &mut rng);
    }
    assert!(hits > 0);
    // Every weight magnitude collapses to zero → all outputs zero.
    let codes = vec![7u32; 16];
    let (out, _) = faulty.matvec(&codes, 1.0);
    assert!(out.iter().all(|&v| v == 0.0));
}

#[test]
fn stuck_at_high_faults_saturate_magnitudes() {
    let mapped = MappedLayer::map(&polarized_matrix(), config()).unwrap();
    let mut faulty = mapped.clone();
    let mut rng = StdRng::seed_from_u64(10);
    let fault = StuckAtFault::new(1.0, StuckAtKind::High);
    for xb in faulty.crossbars_mut() {
        fault.apply(xb, &mut rng);
    }
    // Dequantized magnitudes all hit the top of the grid.
    let back = faulty.dequantized_matrix();
    let step = faulty.step();
    let max_mag = 255.0 * step;
    for &v in back.data() {
        assert!(
            (v.abs() - max_mag).abs() < 1e-4,
            "expected saturated magnitude, got {v}"
        );
    }
}
