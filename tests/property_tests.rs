//! Property-based tests over the core invariants of the reproduction.
//!
//! Formerly `proptest`-based; now deterministic seeded property loops over
//! the in-tree generator, so every run explores exactly the same cases and
//! a failure reproduces bit-identically from the printed case index.

use forms::admm::{
    fragment_signs, polarization_violations, project_polarization, project_quantization,
    project_structured_pruning, quantization_step,
};
use forms::arch::{
    effective_bits, fragment_eic, ChipPlacement, LayerPlacement, MappedLayer, MappingConfig,
    Pipeline, PipelineOp, ShiftRegisterBank,
};
use forms::hwmodel::{Activity, EnergyModel, McuConfig};
use forms::reram::{BitSlicer, CellSpec, CurrentNoise, IrDropModel};
use forms::rng::{Rng, StdRng};
use forms::tensor::{FixedSpec, QuantizedTensor, Shape, Tensor};

/// Runs `body` over `n` deterministic random cases. The case index is in
/// scope for failure messages.
fn cases(n: usize, seed: u64, mut body: impl FnMut(usize, &mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..n {
        body(case, &mut rng);
    }
}

fn random_vec_f32(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn random_vec_u32(rng: &mut StdRng, len: usize, below: u32) -> Vec<u32> {
    (0..len).map(|_| rng.gen_range(0..below)).collect()
}

/// A random small matrix with entries in `[-1, 1)`.
fn small_matrix(rng: &mut StdRng) -> Tensor {
    let rows = rng.gen_range(1..6usize);
    let cols = rng.gen_range(1..5usize);
    let data = random_vec_f32(rng, rows * cols, -1.0, 1.0);
    Tensor::from_vec(data, &[rows, cols])
}

#[test]
fn shape_offset_index_round_trip() {
    cases(128, 0x5A01, |case, rng| {
        let rank = rng.gen_range(1..4usize);
        let dims: Vec<usize> = (0..rank).map(|_| rng.gen_range(1..5usize)).collect();
        let shape = Shape::new(&dims);
        for off in 0..shape.len() {
            assert_eq!(
                shape.offset(&shape.index(off)),
                off,
                "case {case}: dims {dims:?} offset {off}"
            );
        }
    });
}

#[test]
fn quantizer_error_bounded() {
    cases(128, 0x5A02, |case, rng| {
        let len = rng.gen_range(1..64usize);
        let values = random_vec_f32(rng, len, 0.0, 10.0);
        let bits = rng.gen_range(4..16u32);
        let t = Tensor::from_vec(values, &[len]);
        let q = QuantizedTensor::quantize(&t, bits);
        let err = t.max_abs_diff(&q.dequantize());
        assert!(
            err <= q.spec().scale() / 2.0 + 1e-5,
            "case {case}: err {err} at {bits} bits"
        );
    });
}

#[test]
fn fixed_spec_quantize_saturates() {
    cases(256, 0x5A03, |case, rng| {
        let v = rng.gen_range(-100.0f32..100.0);
        let bits = rng.gen_range(2..16u32);
        let spec = FixedSpec::new(bits, 0.01);
        let code = spec.quantize(v);
        assert!(code <= spec.max_code(), "case {case}: {v} at {bits} bits");
    });
}

#[test]
fn polarization_projection_feasible_and_idempotent() {
    cases(96, 0x5A04, |case, rng| {
        let m = small_matrix(rng);
        let frag = rng.gen_range(1..6usize);
        let signs = fragment_signs(&m, frag);
        let z = project_polarization(&m, frag, &signs);
        // Feasible after a fixed-point iteration (zeroing can retire rows):
        let mut zz = z;
        for _ in 0..16 {
            if polarization_violations(&zz, frag) == 0 {
                break;
            }
            let s = fragment_signs(&zz, frag);
            zz = project_polarization(&zz, frag, &s);
        }
        assert_eq!(
            polarization_violations(&zz, frag),
            0,
            "case {case}: fragment {frag}"
        );
        // Idempotent at the fixed point:
        let s = fragment_signs(&zz, frag);
        let z2 = project_polarization(&zz, frag, &s);
        assert_eq!(z2, zz, "case {case}: projection not idempotent");
    });
}

#[test]
fn pruning_projection_structure() {
    cases(96, 0x5A05, |case, rng| {
        let m = small_matrix(rng);
        let rows = m.dims()[0];
        let cols = m.dims()[1];
        let keep_r = rows.div_ceil(2);
        let keep_c = cols.div_ceil(2);
        let z = project_structured_pruning(&m, keep_r, keep_c);
        let nz_rows = (0..rows)
            .filter(|&r| (0..cols).any(|c| z.get(&[r, c]) != 0.0))
            .count();
        let nz_cols = (0..cols)
            .filter(|&c| (0..rows).any(|r| z.get(&[r, c]) != 0.0))
            .count();
        assert!(nz_rows <= keep_r, "case {case}");
        assert!(nz_cols <= keep_c, "case {case}");
        // Projection never changes a surviving entry.
        for i in 0..z.len() {
            let zv = z.data()[i];
            assert!(zv == 0.0 || zv == m.data()[i], "case {case} entry {i}");
        }
    });
}

#[test]
fn quantization_projection_on_grid() {
    cases(96, 0x5A06, |case, rng| {
        let m = small_matrix(rng);
        let bits = rng.gen_range(3..9u32);
        let step = quantization_step(&m, bits);
        let z = project_quantization(&m, step, bits);
        for &v in z.data() {
            let code = v / step;
            assert!(
                (code - code.round()).abs() < 1e-4,
                "case {case}: {v} off-grid at step {step}"
            );
        }
        assert_eq!(
            project_quantization(&z, step, bits),
            z.clone(),
            "case {case}: not idempotent"
        );
    });
}

#[test]
fn effective_bits_bounds() {
    cases(2048, 0x5A07, |case, rng| {
        let code = rng.gen_range(0..65536u32);
        let e = effective_bits(code);
        assert!(e <= 16, "case {case}");
        if code > 0 {
            assert!(code >= 1 << (e - 1), "case {case}: code {code} bits {e}");
            assert!(
                u64::from(code) < 1u64 << e,
                "case {case}: code {code} bits {e}"
            );
        }
    });
}

#[test]
fn eic_is_max_and_monotone() {
    cases(256, 0x5A08, |case, rng| {
        let len = rng.gen_range(1..32usize);
        let codes = random_vec_u32(rng, len, 65536);
        let eic = fragment_eic(&codes);
        assert_eq!(
            eic,
            codes.iter().map(|&c| effective_bits(c)).max().unwrap(),
            "case {case}"
        );
        // Monotone under extension.
        let mut extended = codes.clone();
        extended.push(0);
        assert_eq!(fragment_eic(&extended), eic, "case {case}");
    });
}

#[test]
fn shift_bank_reconstructs_and_stops_at_eic() {
    cases(256, 0x5A09, |case, rng| {
        let len = rng.gen_range(1..16usize);
        let codes = random_vec_u32(rng, len, 65536);
        let planes = ShiftRegisterBank::load(&codes).drain();
        assert_eq!(planes.len() as u32, fragment_eic(&codes), "case {case}");
        let mut rebuilt = vec![0u32; codes.len()];
        for (cycle, bits) in planes.iter().enumerate() {
            for (r, &b) in rebuilt.iter_mut().zip(bits) {
                *r |= (b as u32) << cycle;
            }
        }
        assert_eq!(rebuilt, codes, "case {case}");
    });
}

#[test]
fn bit_slicer_round_trip() {
    cases(512, 0x5A0A, |case, rng| {
        let magnitude = rng.gen_range(0..65536u32);
        let cell_bits = rng.gen_range(1..5u32);
        let slicer = BitSlicer::new(16, cell_bits);
        let slices = slicer.slice(magnitude);
        let results: Vec<u64> = slices.iter().map(|&s| u64::from(s)).collect();
        assert_eq!(
            slicer.recombine(&results),
            u64::from(magnitude),
            "case {case}: {magnitude} at {cell_bits} bits/cell"
        );
        let max_cell = (1u32 << cell_bits) - 1;
        assert!(slices.iter().all(|&s| s <= max_cell), "case {case}");
    });
}

#[test]
fn bit_slicer_round_trip_at_32_bit_boundary() {
    // `weight_bits = 32` is the boundary where `(1 << weight_bits) - 1`
    // would overflow a u32: `max_magnitude` special-cases it, and slicing
    // must still round-trip values all the way up to `u32::MAX`.
    cases(512, 0x5A11, |case, rng| {
        let cell_bits = rng.gen_range(1..6u32);
        let slicer = BitSlicer::new(32, cell_bits);
        assert_eq!(slicer.max_magnitude(), u64::from(u32::MAX), "case {case}");
        // Mix uniform draws with near-boundary values.
        let magnitude = match case % 4 {
            0 => u32::MAX,
            1 => u32::MAX - rng.gen_range(0..1024u32),
            _ => rng.gen_range(0..=u32::MAX),
        };
        let slices = slicer.slice(magnitude);
        assert_eq!(slices.len(), slicer.cells_per_weight(), "case {case}");
        let max_cell = (1u32 << cell_bits) - 1;
        assert!(slices.iter().all(|&s| s <= max_cell), "case {case}");
        let results: Vec<u64> = slices.iter().map(|&s| u64::from(s)).collect();
        assert_eq!(
            slicer.recombine(&results),
            u64::from(magnitude),
            "case {case}: {magnitude} at {cell_bits} bits/cell"
        );
    });
}

#[test]
fn bit_slicer_round_trip_non_divisible_widths() {
    // 7-bit weights on 2-bit cells: the top slice holds a single odd bit,
    // so four cells cover the magnitude with one padded bit. Round-trip
    // must hold for every representable magnitude, and every slice must
    // still fit its cell.
    let slicer = BitSlicer::new(7, 2);
    assert_eq!(slicer.cells_per_weight(), 4);
    for magnitude in 0..=127u32 {
        let slices = slicer.slice(magnitude);
        assert!(slices[0] <= 0b01, "top slice holds only the odd bit");
        assert!(slices.iter().all(|&s| s <= 0b11));
        let results: Vec<u64> = slices.iter().map(|&s| u64::from(s)).collect();
        assert_eq!(slicer.recombine(&results), u64::from(magnitude));
    }
    // Same property for random non-divisible (weight_bits, cell_bits).
    cases(256, 0x5A12, |case, rng| {
        let cell_bits = rng.gen_range(2..6u32);
        // Pick a width that does NOT divide evenly into cells.
        let weight_bits = loop {
            let w = rng.gen_range(2..32u32);
            if w % cell_bits != 0 {
                break w;
            }
        };
        let slicer = BitSlicer::new(weight_bits, cell_bits);
        let magnitude = (rng.gen_range(0..=u32::MAX) as u64 % (slicer.max_magnitude() + 1)) as u32;
        let results: Vec<u64> = slicer
            .slice(magnitude)
            .iter()
            .map(|&s| u64::from(s))
            .collect();
        assert_eq!(
            slicer.recombine(&results),
            u64::from(magnitude),
            "case {case}: {magnitude} as w{weight_bits} on {cell_bits}-bit cells"
        );
    });
}

#[test]
fn adc_for_fragment_resolution_clamps_and_stays_lossless_inside() {
    use forms::reram::Adc;
    cases(256, 0x5A13, |case, rng| {
        let cell_bits = rng.gen_range(1..5u32);
        let spec = CellSpec::new(cell_bits, 1.0, 61.0);
        let rows = 1usize << rng.gen_range(0..24u32);
        let adc = Adc::for_fragment(rows, &spec);
        assert!(
            (1..=16).contains(&adc.bits()),
            "case {case}: {rows} rows of {cell_bits}-bit cells sized {} bits",
            adc.bits()
        );
        let needed = 64
            - (rows as u64 * u64::from(spec.max_code()))
                .max(1)
                .leading_zeros();
        if needed <= 16 {
            // Unclamped: conversion is lossless over the fragment range.
            assert_eq!(adc.bits(), needed.max(1), "case {case}");
            let probe = rng.gen_range(0..=(rows as u64 * u64::from(spec.max_code())).max(1));
            assert_eq!(
                adc.convert(probe as f64, &spec),
                probe as u32,
                "case {case}"
            );
        } else {
            assert_eq!(adc.bits(), 16, "case {case}: clamped at the ceiling");
        }
    });
    // The exact clamp endpoints.
    let spec = forms::reram::CellSpec::paper_2bit();
    assert_eq!(Adc::for_fragment(1, &CellSpec::new(1, 1.0, 2.0)).bits(), 1);
    assert_eq!(Adc::for_fragment(1 << 30, &spec).bits(), 16);
}

#[test]
fn mapped_matvec_matches_digital_reference() {
    cases(48, 0x5A0B, |case, rng| {
        let seed_vals = random_vec_f32(rng, 8, 0.01, 1.0);
        let inputs = random_vec_u32(rng, 8, 256);
        // Build a polarized 8×2 matrix from positive magnitudes.
        let m = Tensor::from_fn(&[8, 2], |i| {
            let (r, c) = (i / 2, i % 2);
            let sign = if ((r / 4) + c) % 2 == 0 { 1.0 } else { -1.0 };
            sign * seed_vals[r]
        });
        let config = MappingConfig {
            crossbar_dim: 8,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 8,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&m, config).expect("polarized by construction");
        let (analog, stats) = mapped.matvec(&inputs, 1.0);
        let reference = mapped
            .dequantized_matrix()
            .transpose()
            .matvec(&inputs.iter().map(|&v| v as f32).collect::<Vec<_>>());
        for (a, r) in analog.iter().zip(&reference) {
            assert!(
                (a - r).abs() < 1e-2 * r.abs().max(1.0),
                "case {case}: {a} vs {r}"
            );
        }
        assert!(stats.cycles <= stats.cycles_without_skip, "case {case}");
    });
}

#[test]
fn noise_sigma_is_monotone_in_signal() {
    cases(512, 0x5A0C, |case, rng| {
        let floor = rng.gen_range(0.0f64..2.0);
        let per_unit = rng.gen_range(0.0f64..0.5);
        let a = rng.gen_range(0.0f64..100.0);
        let b = rng.gen_range(0.0f64..100.0);
        let n = CurrentNoise::new(floor, per_unit);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            n.sigma_at(lo) <= n.sigma_at(hi) + 1e-12,
            "case {case}: sigma not monotone at ({lo}, {hi})"
        );
    });
}

#[test]
fn ir_drop_error_monotone_in_window() {
    cases(256, 0x5A0D, |case, rng| {
        let w1 = rng.gen_range(1..64usize);
        let extra = rng.gen_range(1..64usize);
        let m = IrDropModel::typical();
        let e1 = m.worst_case_relative_error(w1, 61.0);
        let e2 = m.worst_case_relative_error(w1 + extra, 61.0);
        assert!(e2 >= e1, "case {case}: window {w1}+{extra}");
        assert!((0.0..1.0).contains(&e1), "case {case}");
    });
}

#[test]
fn energy_is_monotone_in_activity() {
    cases(256, 0x5A0E, |case, rng| {
        let cycles = rng.gen_range(0..10_000u64);
        let conversions = rng.gen_range(0..10_000u64);
        let model = EnergyModel::from_mcu(&McuConfig::forms(8));
        let base = Activity {
            shift_cycles: cycles,
            adc_conversions: conversions,
            rows_per_cycle: 8,
            cells_per_conversion: 4,
            shift_add_ops: conversions,
        };
        let more = Activity {
            shift_cycles: cycles + 1,
            adc_conversions: conversions + 1,
            shift_add_ops: conversions + 1,
            ..base
        };
        assert!(
            model.energy_pj(&more) > model.energy_pj(&base),
            "case {case}"
        );
        assert!(model.energy_pj(&base) >= 0.0, "case {case}");
    });
}

#[test]
fn placement_covers_all_layers_within_capacity() {
    cases(128, 0x5A0F, |case, rng| {
        let count = rng.gen_range(1..12usize);
        let crossbar_counts: Vec<usize> = (0..count).map(|_| rng.gen_range(1..300usize)).collect();
        let mcu = McuConfig::forms(8);
        let layers: Vec<LayerPlacement> = crossbar_counts
            .iter()
            .map(|&c| LayerPlacement {
                crossbars: c,
                output_bytes: 64,
            })
            .collect();
        match ChipPlacement::place(&mcu, &layers) {
            Ok(p) => {
                assert_eq!(p.assignments().len(), layers.len(), "case {case}");
                // Assignments are disjoint and ordered.
                let mut next = 0;
                for a in p.assignments() {
                    assert_eq!(a.first_tile, next, "case {case}");
                    next += a.tiles;
                }
                assert!(p.total_tiles() <= 168, "case {case}");
            }
            Err(_) => {
                // Only oversized models may fail.
                let tiles: usize = layers.iter().map(|l| l.crossbars.div_ceil(96)).sum();
                assert!(tiles > 168, "case {case}: spurious placement failure");
            }
        }
    });
}

#[test]
fn pipeline_total_bounded_by_serial_and_parallel() {
    cases(256, 0x5A10, |case, rng| {
        let len = rng.gen_range(1..40usize);
        let shifts: Vec<u32> = (0..len).map(|_| rng.gen_range(0..17u32)).collect();
        let p = Pipeline::new(16, false);
        let ops: Vec<PipelineOp> = shifts
            .iter()
            .map(|&s| PipelineOp { shift_cycles: s })
            .collect();
        let total = p.run(&ops);
        // Lower bound: the bottleneck section's total work; upper bound:
        // fully serial execution.
        let work: u64 = shifts.iter().map(|&s| u64::from(s.clamp(1, 16))).sum();
        let serial: u64 = shifts.iter().map(|&s| 6 + u64::from(s.clamp(1, 16))).sum();
        assert!(total >= work, "case {case}: {total} < {work}");
        assert!(total <= serial, "case {case}: {total} > {serial}");
    });
}
