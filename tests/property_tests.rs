//! Property-based tests over the core invariants of the reproduction.

use forms::admm::{
    fragment_signs, polarization_violations, project_polarization, project_quantization,
    project_structured_pruning, quantization_step,
};
use forms::arch::{
    effective_bits, fragment_eic, ChipPlacement, LayerPlacement, MappedLayer, MappingConfig,
    Pipeline, PipelineOp, ShiftRegisterBank,
};
use forms::hwmodel::{Activity, EnergyModel, McuConfig};
use forms::reram::{BitSlicer, CellSpec, CurrentNoise, IrDropModel};
use forms::tensor::{FixedSpec, QuantizedTensor, Shape, Tensor};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Tensor> {
    (
        1usize..6,
        1usize..5,
        proptest::collection::vec(-1.0f32..1.0, 1..30),
    )
        .prop_map(|(rows, cols, data)| {
            let n = rows * cols;
            let mut d = data;
            d.resize(n, 0.25);
            Tensor::from_vec(d, &[rows, cols])
        })
}

proptest! {
    #[test]
    fn shape_offset_index_round_trip(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(&dims);
        for off in 0..shape.len() {
            prop_assert_eq!(shape.offset(&shape.index(off)), off);
        }
    }

    #[test]
    fn quantizer_error_bounded(values in proptest::collection::vec(0.0f32..10.0, 1..64), bits in 4u32..16) {
        let t = Tensor::from_vec(values.clone(), &[values.len()]);
        let q = QuantizedTensor::quantize(&t, bits);
        let err = t.max_abs_diff(&q.dequantize());
        prop_assert!(err <= q.spec().scale() / 2.0 + 1e-5);
    }

    #[test]
    fn fixed_spec_quantize_saturates(v in -100.0f32..100.0, bits in 2u32..16) {
        let spec = FixedSpec::new(bits, 0.01);
        let code = spec.quantize(v);
        prop_assert!(code <= spec.max_code());
    }

    #[test]
    fn polarization_projection_feasible_and_idempotent(m in small_matrix(), frag in 1usize..6) {
        let signs = fragment_signs(&m, frag);
        let z = project_polarization(&m, frag, &signs);
        // Feasible after a fixed-point iteration (zeroing can retire rows):
        let mut zz = z;
        for _ in 0..16 {
            if polarization_violations(&zz, frag) == 0 { break; }
            let s = fragment_signs(&zz, frag);
            zz = project_polarization(&zz, frag, &s);
        }
        prop_assert_eq!(polarization_violations(&zz, frag), 0);
        // Idempotent at the fixed point:
        let s = fragment_signs(&zz, frag);
        let z2 = project_polarization(&zz, frag, &s);
        prop_assert_eq!(z2, zz);
    }

    #[test]
    fn pruning_projection_structure(m in small_matrix()) {
        let rows = m.dims()[0];
        let cols = m.dims()[1];
        let keep_r = (rows + 1) / 2;
        let keep_c = (cols + 1) / 2;
        let z = project_structured_pruning(&m, keep_r, keep_c);
        let nz_rows = (0..rows).filter(|&r| (0..cols).any(|c| z.get(&[r, c]) != 0.0)).count();
        let nz_cols = (0..cols).filter(|&c| (0..rows).any(|r| z.get(&[r, c]) != 0.0)).count();
        prop_assert!(nz_rows <= keep_r);
        prop_assert!(nz_cols <= keep_c);
        // Projection never changes a surviving entry.
        for i in 0..z.len() {
            let zv = z.data()[i];
            prop_assert!(zv == 0.0 || zv == m.data()[i]);
        }
    }

    #[test]
    fn quantization_projection_on_grid(m in small_matrix(), bits in 3u32..9) {
        let step = quantization_step(&m, bits);
        let z = project_quantization(&m, step, bits);
        for &v in z.data() {
            let code = v / step;
            prop_assert!((code - code.round()).abs() < 1e-4);
        }
        prop_assert_eq!(project_quantization(&z, step, bits), z.clone());
    }

    #[test]
    fn effective_bits_bounds(code in 0u32..65536) {
        let e = effective_bits(code);
        prop_assert!(e <= 16);
        if code > 0 {
            prop_assert!(code >= 1 << (e - 1));
            prop_assert!(u64::from(code) < 1u64 << e);
        }
    }

    #[test]
    fn eic_is_max_and_monotone(codes in proptest::collection::vec(0u32..65536, 1..32)) {
        let eic = fragment_eic(&codes);
        prop_assert_eq!(eic, codes.iter().map(|&c| effective_bits(c)).max().unwrap());
        // Monotone under extension.
        let mut extended = codes.clone();
        extended.push(0);
        prop_assert_eq!(fragment_eic(&extended), eic);
    }

    #[test]
    fn shift_bank_reconstructs_and_stops_at_eic(codes in proptest::collection::vec(0u32..65536, 1..16)) {
        let planes = ShiftRegisterBank::load(&codes).drain();
        prop_assert_eq!(planes.len() as u32, fragment_eic(&codes));
        let mut rebuilt = vec![0u32; codes.len()];
        for (cycle, bits) in planes.iter().enumerate() {
            for (r, &b) in rebuilt.iter_mut().zip(bits) {
                *r |= (b as u32) << cycle;
            }
        }
        prop_assert_eq!(rebuilt, codes);
    }

    #[test]
    fn bit_slicer_round_trip(magnitude in 0u32..65536, cell_bits in 1u32..5) {
        let slicer = BitSlicer::new(16, cell_bits);
        let slices = slicer.slice(magnitude);
        let results: Vec<u64> = slices.iter().map(|&s| u64::from(s)).collect();
        prop_assert_eq!(slicer.recombine(&results), u64::from(magnitude));
        let max_cell = (1u32 << cell_bits) - 1;
        prop_assert!(slices.iter().all(|&s| s <= max_cell));
    }

    #[test]
    fn mapped_matvec_matches_digital_reference(
        seed_vals in proptest::collection::vec(0.01f32..1.0, 8),
        inputs in proptest::collection::vec(0u32..256, 8),
    ) {
        // Build a polarized 8×2 matrix from positive magnitudes.
        let m = Tensor::from_fn(&[8, 2], |i| {
            let (r, c) = (i / 2, i % 2);
            let sign = if ((r / 4) + c) % 2 == 0 { 1.0 } else { -1.0 };
            sign * seed_vals[r]
        });
        let config = MappingConfig {
            crossbar_dim: 8,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 8,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&m, config).expect("polarized by construction");
        let (analog, stats) = mapped.matvec(&inputs, 1.0);
        let reference = mapped
            .dequantized_matrix()
            .transpose()
            .matvec(&inputs.iter().map(|&v| v as f32).collect::<Vec<_>>());
        for (a, r) in analog.iter().zip(&reference) {
            prop_assert!((a - r).abs() < 1e-2 * r.abs().max(1.0), "{a} vs {r}");
        }
        prop_assert!(stats.cycles <= stats.cycles_without_skip);
    }
}

proptest! {
    #[test]
    fn noise_sigma_is_monotone_in_signal(
        floor in 0.0f64..2.0,
        per_unit in 0.0f64..0.5,
        a in 0.0f64..100.0,
        b in 0.0f64..100.0,
    ) {
        let n = CurrentNoise::new(floor, per_unit);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.sigma_at(lo) <= n.sigma_at(hi) + 1e-12);
    }

    #[test]
    fn ir_drop_error_monotone_in_window(w1 in 1usize..64, extra in 1usize..64) {
        let m = IrDropModel::typical();
        let e1 = m.worst_case_relative_error(w1, 61.0);
        let e2 = m.worst_case_relative_error(w1 + extra, 61.0);
        prop_assert!(e2 >= e1);
        prop_assert!((0.0..1.0).contains(&e1));
    }

    #[test]
    fn energy_is_monotone_in_activity(cycles in 0u64..10_000, conversions in 0u64..10_000) {
        let model = EnergyModel::from_mcu(&McuConfig::forms(8));
        let base = Activity {
            shift_cycles: cycles,
            adc_conversions: conversions,
            rows_per_cycle: 8,
            cells_per_conversion: 4,
            shift_add_ops: conversions,
        };
        let more = Activity {
            shift_cycles: cycles + 1,
            adc_conversions: conversions + 1,
            shift_add_ops: conversions + 1,
            ..base
        };
        prop_assert!(model.energy_pj(&more) > model.energy_pj(&base));
        prop_assert!(model.energy_pj(&base) >= 0.0);
    }

    #[test]
    fn placement_covers_all_layers_within_capacity(
        crossbar_counts in proptest::collection::vec(1usize..300, 1..12),
    ) {
        let mcu = McuConfig::forms(8);
        let layers: Vec<LayerPlacement> = crossbar_counts
            .iter()
            .map(|&c| LayerPlacement { crossbars: c, output_bytes: 64 })
            .collect();
        match ChipPlacement::place(&mcu, &layers) {
            Ok(p) => {
                prop_assert_eq!(p.assignments().len(), layers.len());
                // Assignments are disjoint and ordered.
                let mut next = 0;
                for a in p.assignments() {
                    prop_assert_eq!(a.first_tile, next);
                    next += a.tiles;
                }
                prop_assert!(p.total_tiles() <= 168);
            }
            Err(_) => {
                // Only oversized models may fail.
                let tiles: usize = layers.iter().map(|l| l.crossbars.div_ceil(96)).sum();
                prop_assert!(tiles > 168);
            }
        }
    }

    #[test]
    fn pipeline_total_bounded_by_serial_and_parallel(
        shifts in proptest::collection::vec(0u32..17, 1..40),
    ) {
        let p = Pipeline::new(16, false);
        let ops: Vec<PipelineOp> = shifts
            .iter()
            .map(|&s| PipelineOp { shift_cycles: s })
            .collect();
        let total = p.run(&ops);
        // Lower bound: the bottleneck section's total work; upper bound:
        // fully serial execution.
        let work: u64 = shifts.iter().map(|&s| u64::from(s.clamp(1, 16))).sum();
        let serial: u64 = shifts
            .iter()
            .map(|&s| 6 + u64::from(s.clamp(1, 16)))
            .sum();
        prop_assert!(total >= work);
        prop_assert!(total <= serial);
    }
}
