//! Integration: a compressed model survives a checkpoint round trip with
//! its constraints intact and maps identically afterwards — the deployment
//! path a real user of the library would take.

use forms::admm::{
    polarization_violations, AdmmConfig, AdmmTrainer, LayerConstraints, PolarizationPolicy,
    PolarizeSpec, QuantSpec,
};
use forms::arch::{Accelerator, AcceleratorConfig, MappingConfig};
use forms::dnn::{checkpoint, Layer, Network, WeightLayerMut};
use forms::reram::CellSpec;
use forms::rng::StdRng;
use forms::tensor::Tensor;

fn build_net(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(vec![
        Layer::conv2d(&mut rng, 1, 4, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(&mut rng, 4 * 4 * 4, 3),
    ])
}

fn config() -> AcceleratorConfig {
    AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 16,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 12,
            zero_skipping: true,
        },
        activation_bits: 12,
    }
}

#[test]
fn compressed_model_round_trips_through_checkpoint() {
    let mut net = build_net(77);
    let constraints = vec![
        LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            quantize: Some(QuantSpec { bits: 8 }),
            ..Default::default()
        };
        net.weight_layer_count()
    ];
    let mut trainer = AdmmTrainer::new(&mut net, constraints, AdmmConfig::default());
    trainer.finalize(&mut net);

    // Serialize, load into a fresh (differently initialized) topology.
    let bytes = checkpoint::to_bytes(&mut net);
    let mut restored = build_net(78);
    checkpoint::from_bytes(&mut restored, &bytes).expect("same topology loads");

    // The constraints survive byte-exactly …
    restored.for_each_weight_layer(&mut |wl| {
        let m = match wl {
            WeightLayerMut::Conv(c) => c.weight_matrix(),
            WeightLayerMut::Linear(l) => l.weight_matrix(),
        };
        assert_eq!(polarization_violations(&m, 4), 0);
    });

    // … and both copies map to bit-identical accelerators.
    let mut a = Accelerator::map_network(&net, config()).expect("original maps");
    let mut b = Accelerator::map_network(&restored, config()).expect("restored maps");
    let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
    assert_eq!(a.forward(&x), b.forward(&x));
    assert_eq!(a.total_crossbars(), b.total_crossbars());
}

#[test]
fn checkpoint_rejects_wrong_topology() {
    let mut net = build_net(80);
    let bytes = checkpoint::to_bytes(&mut net);
    let mut rng = StdRng::seed_from_u64(81);
    let mut other = Network::new(vec![Layer::linear(&mut rng, 8, 3)]);
    assert!(checkpoint::from_bytes(&mut other, &bytes).is_err());
}
