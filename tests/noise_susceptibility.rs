//! Integration: the paper's §II-C claim 3 — fine-grained sub-arrays are
//! less susceptible to analog noise than coarse-grained columns — pinned as
//! a test over the full mapping + converter stack.

use forms::arch::{MappedLayer, MappingConfig};
use forms::reram::{CellSpec, CurrentNoise, IrDropModel};
use forms::rng::StdRng;
use forms::tensor::Tensor;

/// All-positive magnitudes: polarized at every fragment size, so the same
/// matrix serves the whole sweep.
fn positive_matrix(rows: usize, cols: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| 0.05 + ((i * 13) % 11) as f32 / 16.0)
}

fn config(fragment: usize) -> MappingConfig {
    MappingConfig {
        crossbar_dim: 128,
        fragment_size: fragment,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    }
}

fn mean_noise_error(fragment: usize, runs: u64) -> f64 {
    let w = positive_matrix(128, 4);
    let mapped = MappedLayer::map(&w, config(fragment)).unwrap();
    let codes: Vec<u32> = (0..128).map(|i| ((i * 37) % 256) as u32).collect();
    let (clean, _) = mapped.matvec(&codes, 1.0);
    let scale = clean.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
    let noise = CurrentNoise::typical();
    let mut total = 0.0f64;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(4000 + run);
        let (noisy, _) = mapped.matvec_noisy(&codes, 1.0, &noise, &mut rng);
        let err: f32 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / clean.len() as f32;
        total += (err / scale) as f64;
    }
    total / runs as f64
}

#[test]
fn fine_grained_fragments_suffer_less_read_noise() {
    let fine = mean_noise_error(8, 12);
    let coarse = mean_noise_error(128, 12);
    // The fine fragment's per-unit ADC levels round typical read noise away
    // almost entirely; the coarse column's wide full-scale cannot.
    assert!(
        fine < 5e-4,
        "fine-grained error should be near zero, got {fine:.5}"
    );
    assert!(
        coarse > fine + 1e-4,
        "coarse ({coarse:.5}) should be noisier than fine ({fine:.5})"
    );
}

#[test]
fn fine_grained_fragments_suffer_less_ir_drop() {
    let ir = IrDropModel::typical();
    let fine = ir.worst_case_relative_error(8, 61.0);
    let coarse = ir.worst_case_relative_error(128, 61.0);
    assert!(
        coarse > 4.0 * fine,
        "IR drop: coarse {coarse} vs fine {fine}"
    );
}

#[test]
fn sufficient_adc_resolution_rejects_small_noise_entirely() {
    // The ideal fragment ADC has one level per code unit; sub-half-unit
    // noise rounds away — exactly why small full-scales are robust.
    let w = positive_matrix(32, 2);
    let mapped = MappedLayer::map(
        &w,
        MappingConfig {
            crossbar_dim: 32,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 8,
            zero_skipping: true,
        },
    )
    .unwrap();
    let codes: Vec<u32> = (0..32).map(|i| (i % 16) as u32).collect();
    let (clean, _) = mapped.matvec(&codes, 1.0);
    let mut rng = StdRng::seed_from_u64(99);
    // σ = 0.1 code units: rounds to the programmed level almost surely.
    let noise = CurrentNoise::new(0.1, 0.0);
    let (noisy, _) = mapped.matvec_noisy(&codes, 1.0, &noise, &mut rng);
    assert_eq!(clean, noisy, "sub-LSB noise must be fully rejected");
}
