//! Determinism regression: the executor's batched (`matmul_into`) and
//! work-stealing parallel paths must be bitwise identical to the serial
//! per-sample path, for both the FORMS design and the ISAAC baseline, on
//! a pruned multi-crossbar network.
//!
//! This pins the property the serving layer is built on: lowering a whole
//! batch through one blocked kernel call, or distributing samples across
//! workers (or replicas) with an atomic work-stealing cursor, can never
//! change a result, because activation quantization is per-sample, column
//! evaluation order matches the per-sample loop, and the engines are
//! immutable during inference. Any future change that introduces
//! batch-global state into the hot path fails here first.

use forms::admm::{
    fragment_signs, polarization_violations, project_polarization, project_structured_pruning,
};
use forms::arch::{MappedLayer, MappingConfig};
use forms::baselines::{IsaacConfig, IsaacLayer};
use forms::dnn::{Layer, Network, WeightLayerMut};
use forms::exec::{CrossbarEngine, Executor, LayerPrecision, PrecisionPlan};
use forms::reram::CellSpec;
use forms::rng::StdRng;
use forms::tensor::Tensor;

const FRAGMENT: usize = 4;

/// A CNN whose linear layer spans several 16×16 crossbars, with weights
/// structured-pruned (25% of rows dropped) and then fragment-polarized so
/// FORMS can map them.
fn pruned_polarized_net() -> Network {
    let mut rng = StdRng::seed_from_u64(0xDE7);
    let mut net = Network::new(vec![
        Layer::conv2d(&mut rng, 1, 8, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(&mut rng, 8 * 4 * 4, 10),
    ]);
    net.for_each_weight_layer(&mut |wl| {
        let mut z = match &wl {
            WeightLayerMut::Conv(c) => c.weight_matrix(),
            WeightLayerMut::Linear(l) => l.weight_matrix(),
        };
        let (rows, cols) = (z.dims()[0], z.dims()[1]);
        z = project_structured_pruning(&z, rows * 3 / 4, cols);
        while polarization_violations(&z, FRAGMENT) > 0 {
            let signs = fragment_signs(&z, FRAGMENT);
            z = project_polarization(&z, FRAGMENT, &signs);
        }
        match wl {
            WeightLayerMut::Conv(c) => c.set_weight_matrix(&z),
            WeightLayerMut::Linear(l) => l.set_weight_matrix(&z),
        }
    });
    net
}

fn batch() -> Tensor {
    Tensor::from_fn(&[5, 1, 8, 8], |i| ((i * 13) % 23) as f32 / 23.0)
}

fn assert_parallel_matches_serial<E: CrossbarEngine>(exec: &Executor<E>, design: &str)
where
    E::Stats: PartialEq + std::fmt::Debug,
{
    let x = batch();
    let mut serial = exec.clone();
    let expected = serial.forward(&x);
    // The batched lowering (one blocked matmul_into per layer) must be
    // bitwise identical to the per-sample walk, outputs and stats alike.
    let mut batched = exec.clone();
    let got = batched.forward_batched(&x);
    assert_eq!(
        got.data(),
        expected.data(),
        "{design}: batched outputs not bitwise identical to serial"
    );
    assert_eq!(
        batched.stats(),
        serial.stats(),
        "{design}: batched stats diverge from serial"
    );
    assert_eq!(
        batched.layer_mvms(),
        serial.layer_mvms(),
        "{design}: batched per-layer MVM counts diverge"
    );
    for workers in [1, 2, 4] {
        let mut parallel = exec.clone();
        let got = parallel.forward_parallel(&x, workers);
        assert_eq!(
            got.dims(),
            expected.dims(),
            "{design}: dims diverge at {workers} workers"
        );
        assert_eq!(
            got.data(),
            expected.data(),
            "{design}: outputs not bitwise identical at {workers} workers"
        );
        assert_eq!(
            parallel.stats(),
            serial.stats(),
            "{design}: merged stats diverge at {workers} workers"
        );
        assert_eq!(
            parallel.layer_mvms(),
            serial.layer_mvms(),
            "{design}: per-layer MVM counts diverge at {workers} workers"
        );
    }
}

#[test]
fn forms_parallel_forward_is_bitwise_deterministic() {
    let net = pruned_polarized_net();
    let config = MappingConfig {
        crossbar_dim: 16,
        fragment_size: FRAGMENT,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    };
    let exec = Executor::<MappedLayer>::map_network(&net, &config, 8).expect("maps on FORMS");
    assert!(
        exec.total_crossbars() > 4,
        "the regression must cover a multi-crossbar mapping, got {}",
        exec.total_crossbars()
    );
    assert_parallel_matches_serial(&exec, "FORMS");
}

#[test]
fn isaac_parallel_forward_is_bitwise_deterministic() {
    let net = pruned_polarized_net();
    let config = IsaacConfig {
        crossbar_dim: 16,
        cell: CellSpec::paper_2bit(),
        weight_bits: 8,
        input_bits: 8,
    };
    let exec = Executor::<IsaacLayer>::map_network(&net, &config, 8).expect("maps on ISAAC");
    assert!(exec.total_crossbars() > 4);
    assert_parallel_matches_serial(&exec, "ISAAC");
}

/// The mixed-precision plan used by the plan-aware determinism pins:
/// conv at full 8/8, linear narrowed to 4/6 — each layer runs a
/// genuinely different quantization, so batch-global state sneaking into
/// either path fails here too.
fn mixed_plan() -> PrecisionPlan {
    PrecisionPlan::per_layer(vec![LayerPrecision::new(8, 8), LayerPrecision::new(4, 6)])
}

#[test]
fn forms_mixed_plan_parallel_forward_is_bitwise_deterministic() {
    let net = pruned_polarized_net();
    let config = MappingConfig {
        crossbar_dim: 16,
        fragment_size: FRAGMENT,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    };
    let exec = Executor::<MappedLayer>::with_plan(&net, &config, mixed_plan())
        .expect("maps on FORMS under a mixed plan");
    assert!(!exec.plan().is_uniform());
    assert_eq!(exec.layer_configs()[1].weight_bits, 4);
    assert_eq!(exec.layer_input_bits(), &[8, 6]);
    assert_parallel_matches_serial(&exec, "FORMS(mixed)");
}

#[test]
fn isaac_mixed_plan_parallel_forward_is_bitwise_deterministic() {
    let net = pruned_polarized_net();
    let config = IsaacConfig {
        crossbar_dim: 16,
        cell: CellSpec::paper_2bit(),
        weight_bits: 8,
        input_bits: 8,
    };
    let exec = Executor::<IsaacLayer>::with_plan(&net, &config, mixed_plan())
        .expect("maps on ISAAC under a mixed plan");
    assert!(!exec.plan().is_uniform());
    assert_parallel_matches_serial(&exec, "ISAAC(mixed)");
}

/// A uniform plan at the base configuration's own widths must reproduce
/// the legacy `map_network` path bit for bit — outputs AND statistics —
/// on both designs.
#[test]
fn uniform_plan_is_bitwise_identical_to_legacy_mapping() {
    let net = pruned_polarized_net();
    let x = batch();

    let fconfig = MappingConfig {
        crossbar_dim: 16,
        fragment_size: FRAGMENT,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 8,
        zero_skipping: true,
    };
    let mut legacy = Executor::<MappedLayer>::map_network(&net, &fconfig, 8).unwrap();
    let mut planned =
        Executor::<MappedLayer>::with_plan(&net, &fconfig, PrecisionPlan::uniform(8, 8)).unwrap();
    assert_eq!(legacy.forward(&x).data(), planned.forward(&x).data());
    assert_eq!(legacy.stats(), planned.stats(), "FORMS stats diverge");

    let iconfig = IsaacConfig {
        crossbar_dim: 16,
        cell: CellSpec::paper_2bit(),
        weight_bits: 8,
        input_bits: 8,
    };
    let mut legacy = Executor::<IsaacLayer>::map_network(&net, &iconfig, 8).unwrap();
    let mut planned =
        Executor::<IsaacLayer>::with_plan(&net, &iconfig, PrecisionPlan::uniform(8, 8)).unwrap();
    assert_eq!(legacy.forward(&x).data(), planned.forward(&x).data());
    assert_eq!(legacy.stats(), planned.stats(), "ISAAC stats diverge");
}
