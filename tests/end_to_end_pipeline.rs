//! End-to-end integration: ADMM-compressed model → polarized crossbar
//! mapping → mixed-signal inference, checked against the digital reference.

use forms::admm::{
    AdmmConfig, AdmmTrainer, LayerConstraints, PolarizationPolicy, PolarizeSpec, PruneSpec,
    QuantSpec,
};
use forms::arch::{Accelerator, AcceleratorConfig, MappingConfig};
use forms::dnn::data::SyntheticSpec;
use forms::dnn::{evaluate, train_epoch, Network, Sgd};
use forms::exec::ExecError;
use forms::reram::CellSpec;
use forms::rng::StdRng;

fn small_accel_config(fragment: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 16,
            fragment_size: fragment,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 12,
            zero_skipping: true,
        },
        activation_bits: 12,
    }
}

/// Trains a small conv net, compresses it with the full FORMS stack, maps
/// it, and verifies the whole chain.
#[test]
fn admm_to_accelerator_pipeline() {
    let mut rng = StdRng::seed_from_u64(42);
    let spec = SyntheticSpec {
        classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 24,
        test_per_class: 10,
        noise: 0.15,
    };
    let (mut train, test) = spec.generate(&mut rng);
    let mut net = Network::new(vec![
        forms::dnn::Layer::conv2d(&mut rng, 1, 6, 3, 1, 1),
        forms::dnn::Layer::relu(),
        forms::dnn::Layer::max_pool(2),
        forms::dnn::Layer::flatten(),
        forms::dnn::Layer::linear(&mut rng, 6 * 4 * 4, 4),
    ]);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    for _ in 0..10 {
        train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
    }
    let baseline_acc = evaluate(&mut net, &test, 16);
    assert!(
        baseline_acc > 0.5,
        "baseline failed to train: {baseline_acc}"
    );

    // An unpolarized net must be rejected by the mapper.
    assert!(matches!(
        Accelerator::map_network(&net, small_accel_config(4)),
        Err(ExecError::NotPolarized { .. })
    ));

    // Compress with the full FORMS stack.
    let count = net.weight_layer_count();
    let constraints: Vec<LayerConstraints> = (0..count)
        .map(|i| LayerConstraints {
            prune: Some(PruneSpec {
                shape_keep: 0.75,
                filter_keep: if i + 1 == count { 1.0 } else { 0.75 },
            }),
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            quantize: Some(QuantSpec { bits: 8 }),
        })
        .collect();
    let config = AdmmConfig {
        epochs: 12,
        lr: 0.02,
        ..Default::default()
    };
    let mut trainer = AdmmTrainer::new(&mut net, constraints, config);
    let report = trainer.train(&mut net, &mut train, &test, &mut rng);
    assert_eq!(
        trainer.constraint_violations(&mut net),
        0,
        "finalized model must satisfy every constraint"
    );

    // Map and run through the analog path.
    let mut accel =
        Accelerator::map_network(&net, small_accel_config(4)).expect("polarized net must map");
    let analog_acc = accel.evaluate(&test, 8);
    assert!(
        (analog_acc - report.test_accuracy).abs() <= 0.15,
        "analog accuracy {analog_acc} diverges from digital {}",
        report.test_accuracy
    );

    // Zero-skipping must have saved cycles on real activations.
    let stats = accel.stats();
    assert!(stats.cycles > 0);
    assert!(
        stats.cycles < stats.cycles_without_skip,
        "no cycles saved: {stats:?}"
    );
}

/// The same compressed network maps at every paper fragment size and the
/// crossbar count shrinks as structure is pruned away.
#[test]
fn fragment_sizes_all_map() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Network::new(vec![
        forms::dnn::Layer::conv2d(&mut rng, 2, 4, 3, 1, 1),
        forms::dnn::Layer::relu(),
        forms::dnn::Layer::flatten(),
        forms::dnn::Layer::linear(&mut rng, 4 * 16, 3),
    ]);
    let count = net.weight_layer_count();
    let constraints: Vec<LayerConstraints> = (0..count)
        .map(|_| LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        })
        .collect();
    let mut trainer = AdmmTrainer::new(&mut net, constraints, AdmmConfig::default());
    trainer.finalize(&mut net);
    for fragment in [4usize, 8, 16] {
        // Fragments of 8/16 coarsen the 4-polarized pattern only if every
        // sub-fragment agrees; re-polarize at the target size first.
        let cs: Vec<LayerConstraints> = (0..count)
            .map(|_| LayerConstraints {
                polarize: Some(PolarizeSpec {
                    fragment_size: fragment,
                    policy: PolarizationPolicy::WMajor,
                }),
                ..Default::default()
            })
            .collect();
        let mut t = AdmmTrainer::new(&mut net.clone(), cs, AdmmConfig::default());
        let mut n = net.clone();
        t.finalize(&mut n);
        let accel = Accelerator::map_network(&n, small_accel_config(fragment))
            .expect("re-polarized net must map");
        assert!(accel.total_crossbars() > 0);
    }
}
