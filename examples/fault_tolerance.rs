//! Non-ideality exploration: device variation, stuck-at faults, read noise
//! and IR drop on a mapped model — the robustness side of the paper's
//! evaluation (§V-E and the §II-C fine-grained argument).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use forms::admm::{AdmmConfig, AdmmTrainer, LayerConstraints, PolarizationPolicy, PolarizeSpec};
use forms::arch::{Accelerator, AcceleratorConfig, MappingConfig};
use forms::dnn::data::SyntheticSpec;
use forms::dnn::{train_epoch, Layer, Network, Sgd};
use forms::exec::{FaultCampaign, FaultReport, FaultableEngine};
use forms::reram::{CellSpec, IrDropModel, LogNormalVariation};
use forms::rng::StdRng;

/// Applies one seeded campaign to every mapped layer of an accelerator,
/// decorrelating layers by salt, and returns the merged fault report.
fn inject(acc: &mut Accelerator, campaign: &FaultCampaign) -> FaultReport {
    let mut report = FaultReport::default();
    for (i, layer) in acc.mapped_layers_mut().iter_mut().enumerate() {
        report.merge(&layer.inject_faults(campaign, i as u64));
    }
    report
}

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let spec = SyntheticSpec {
        classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 24,
        test_per_class: 12,
        noise: 0.2,
    };
    let (mut train, test) = spec.generate(&mut rng);
    let mut net = Network::new(vec![
        Layer::conv2d(&mut rng, 1, 6, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(&mut rng, 6 * 4 * 4, 4),
    ]);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    for _ in 0..10 {
        train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
    }
    let constraints = vec![
        LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        net.weight_layer_count()
    ];
    let mut trainer = AdmmTrainer::new(
        &mut net,
        constraints,
        AdmmConfig {
            epochs: 10,
            lr: 0.02,
            ..Default::default()
        },
    );
    trainer.train(&mut net, &mut train, &test, &mut rng);

    let config = AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 16,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 12,
            zero_skipping: true,
        },
        activation_bits: 12,
    };
    let clean = Accelerator::map_network(&net, config).expect("polarized model maps");
    let baseline = clean.clone().evaluate(&test, 8);
    println!("clean mixed-signal accuracy: {:.1}%", 100.0 * baseline);
    println!();
    println!("fault model                    | accuracy");

    // 1. Log-normal device variation at increasing sigma.
    for sigma in [0.05, 0.1, 0.3] {
        let mut acc = clean.clone();
        acc.apply_variation(&LogNormalVariation::new(0.0, sigma), &mut rng);
        println!(
            "variation σ={sigma:<4}               | {:7.1}%",
            100.0 * acc.evaluate(&test, 8)
        );
    }

    // 2. Seeded stuck-at campaigns at increasing rates: one campaign
    //    value describes the whole experiment, and the same seed replays
    //    the exact same faulty silicon.
    for rate in [0.001, 0.01, 0.05] {
        for (label, low, high) in [("low ", rate, 0.0), ("high", 0.0, rate)] {
            let mut acc = clean.clone();
            let report = inject(&mut acc, &FaultCampaign::stuck_at(21, low, high));
            println!(
                "stuck-at-{label} rate {rate:<5} ({:4} cells) | {:7.1}%",
                report.stuck(),
                100.0 * acc.evaluate(&test, 8)
            );
        }
    }

    // 3. Conductance drift as a campaign, for the same replayability.
    for sigma in [0.05, 0.2] {
        let mut acc = clean.clone();
        let report = inject(&mut acc, &FaultCampaign::drift(34, sigma));
        println!(
            "drift campaign σ={sigma:<4} ({:4} cells) | {:7.1}%",
            report.drifted,
            100.0 * acc.evaluate(&test, 8)
        );
    }

    // 4. IR-drop bound as an analytic sanity check.
    println!();
    let ir = IrDropModel::typical();
    println!(
        "IR-drop worst-case relative error: fragment 4 = {:.3}%, fragment 128 = {:.3}% — the \
         fine-grained window bounds what the wire can corrupt.",
        100.0 * ir.worst_case_relative_error(4, 61.0),
        100.0 * ir.worst_case_relative_error(128, 61.0)
    );
}
