//! Head-to-head: the same trained model executed on the FORMS polarized
//! accelerator and on the ISAAC offset-encoded baseline — accuracy, cycle
//! and correction-work comparison on the same `forms-reram` substrate.
//!
//! ```text
//! cargo run --release --example isaac_vs_forms
//! ```

use forms::admm::{AdmmConfig, AdmmTrainer, LayerConstraints, PolarizationPolicy, PolarizeSpec};
use forms::arch::{Accelerator, AcceleratorConfig, MappingConfig};
use forms::baselines::{IsaacAccelerator, IsaacConfig};
use forms::dnn::data::SyntheticSpec;
use forms::dnn::{evaluate, train_epoch, Layer, Network, Sgd};
use forms::reram::CellSpec;
use forms::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let spec = SyntheticSpec {
        classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 24,
        test_per_class: 12,
        noise: 0.2,
    };
    let (mut train, test) = spec.generate(&mut rng);
    let mut net = Network::new(vec![
        Layer::conv2d(&mut rng, 1, 6, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(&mut rng, 6 * 4 * 4, 4),
    ]);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    for _ in 0..10 {
        train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
    }
    let digital = evaluate(&mut net, &test, 16);
    println!("digital accuracy: {:.1}%", 100.0 * digital);

    // ISAAC maps the signed model directly.
    let isaac_cfg = IsaacConfig {
        crossbar_dim: 16,
        cell: CellSpec::paper_2bit(),
        weight_bits: 8,
        input_bits: 12,
    };
    let mut isaac = IsaacAccelerator::map_network(&net, isaac_cfg).expect("any trained model maps");
    let isaac_acc = isaac.evaluate(&test, 8);
    let istats = isaac.stats();

    // FORMS needs polarization first.
    let constraints = vec![
        LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        net.weight_layer_count()
    ];
    let mut trainer = AdmmTrainer::new(
        &mut net,
        constraints,
        AdmmConfig {
            epochs: 10,
            lr: 0.02,
            ..Default::default()
        },
    );
    trainer.train(&mut net, &mut train, &test, &mut rng);
    let forms_cfg = AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 16,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 12,
            zero_skipping: true,
        },
        activation_bits: 12,
    };
    let mut forms = Accelerator::map_network(&net, forms_cfg).expect("polarized model maps");
    let forms_acc = forms.evaluate(&test, 8);
    let fstats = forms.stats();

    println!();
    println!("                     |     ISAAC |     FORMS");
    println!(
        "accuracy             | {:8.1}% | {:8.1}%",
        100.0 * isaac_acc,
        100.0 * forms_acc
    );
    println!(
        "crossbars            | {:9} | {:9}",
        isaac.total_crossbars(),
        forms.total_crossbars()
    );
    println!(
        "input cycles         | {:9} | {:9}",
        istats.cycles, fstats.cycles
    );
    println!(
        "offset subtractions  | {:9} | {:9}",
        istats.offset_subtractions, 0
    );
    println!(
        "sign-indicator bits  | {:9} | {:9}",
        0,
        forms
            .mapped_layers()
            .iter()
            .map(|l| l.sign_bits())
            .sum::<usize>()
    );
    println!(
        "cycles saved by skip | {:>9} | {:8.1}%",
        "—",
        100.0 * fstats.cycles_saved_fraction()
    );
    println!();
    println!(
        "FORMS trades ISAAC's per-input-bit correction work ({} subtractions here) for one \
         sign bit per fragment, and skips {:.1}% of its input cycles outright.",
        istats.offset_subtractions,
        100.0 * fstats.cycles_saved_fraction()
    );
}
