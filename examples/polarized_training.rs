//! The full FORMS optimization stack (paper Fig. 1), step by step:
//! crossbar-aware structured pruning → fragment polarization → ReRAM
//! quantization, with the compression bookkeeping of Tables I/II.
//!
//! ```text
//! cargo run --release --example polarized_training
//! ```

use forms::admm::{
    crossbar_aware_keep, AdmmConfig, AdmmTrainer, CompressionSummary, LayerConstraints,
    PolarizationPolicy, PolarizeSpec, PruneSpec, QuantSpec,
};
use forms::dnn::data::SyntheticSpec;
use forms::dnn::{evaluate, models, train_epoch, Sgd};
use forms::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let (mut train, test) = SyntheticSpec::mnist_like().generate(&mut rng);
    let mut net = models::lenet5(&mut rng, 1, 16, 10);

    // Baseline training.
    let mut opt = Sgd::new(0.02).momentum(0.9);
    for _ in 0..12 {
        train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
    }
    let baseline = evaluate(&mut net, &test, 32);
    println!("baseline LeNet-5 accuracy: {:.1}%", 100.0 * baseline);

    // Crossbar-aware pruning ratios (paper §III-A): keep counts round up to
    // array boundaries so no pruned weight is wasted.
    let crossbar_dim = 32;
    println!(
        "crossbar-aware keep example: want 9 of 96 rows -> keep {}",
        crossbar_aware_keep(96, 9, crossbar_dim)
    );

    // Full constraint stack, classifier head exempt from filter pruning.
    let count = net.weight_layer_count();
    let constraints: Vec<LayerConstraints> = (0..count)
        .map(|i| LayerConstraints {
            prune: Some(PruneSpec {
                shape_keep: 0.4,
                filter_keep: if i + 1 == count { 1.0 } else { 0.5 },
            }),
            polarize: Some(PolarizeSpec {
                fragment_size: 8,
                policy: PolarizationPolicy::CMajor,
            }),
            quantize: Some(QuantSpec { bits: 8 }),
        })
        .collect();
    let config = AdmmConfig {
        epochs: 10,
        lr: 0.02,
        ..Default::default()
    };
    let mut trainer = AdmmTrainer::new(&mut net, constraints, config);
    let report = trainer.train(&mut net, &mut train, &test, &mut rng);

    println!(
        "compressed accuracy: {:.1}% (pre-projection {:.1}%)",
        100.0 * report.test_accuracy,
        100.0 * report.pre_projection_accuracy
    );
    assert_eq!(trainer.constraint_violations(&mut net), 0);

    // Compression bookkeeping (Tables I/II).
    let summary = CompressionSummary::measure(&mut net, 32, 8, 2, crossbar_dim);
    let (prune, quant, polar) = summary.reduction_factors();
    println!("prune ratio:         {prune:.2}x");
    println!("quantization factor: {quant:.2}x (32-bit -> 8-bit on 2-bit cells)");
    println!("polarization factor: {polar:.2}x (vs split-mapped baseline)");
    println!(
        "crossbar reduction:  {:.2}x ({} baseline crossbars -> {})",
        summary.crossbar_reduction(),
        summary.baseline_crossbars(),
        summary.compressed_crossbars()
    );
    for (i, layer) in summary.layers.iter().enumerate() {
        println!(
            "  layer {i}: {}x{} -> {} rows x {} cols non-zero (prune {:.2}x)",
            layer.rows,
            layer.cols,
            layer.nonzero_rows,
            layer.nonzero_cols,
            layer.prune_ratio()
        );
    }
}
