//! Fragment-size design sweep on the mixed-signal simulator: map the same
//! polarized model at several fragment sizes and compare accuracy, cycle
//! savings and the frame-rate estimate — the trade-off at the heart of the
//! paper (§IV-B/C).
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use forms::admm::{AdmmConfig, AdmmTrainer, LayerConstraints, PolarizationPolicy, PolarizeSpec};
use forms::arch::{Accelerator, AcceleratorConfig, FpsModel, MappingConfig};
use forms::dnn::data::SyntheticSpec;
use forms::dnn::{evaluate, train_epoch, Layer, Network, Sgd};
use forms::hwmodel::McuConfig;
use forms::reram::{CellSpec, LogNormalVariation};
use forms::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let spec = SyntheticSpec {
        classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 24,
        test_per_class: 12,
        noise: 0.2,
    };
    let (mut train, test) = spec.generate(&mut rng);
    let mut base = Network::new(vec![
        Layer::conv2d(&mut rng, 1, 8, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(&mut rng, 8 * 4 * 4, 4),
    ]);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    for _ in 0..10 {
        train_epoch(&mut base, &mut opt, &mut train, 16, &mut rng);
    }
    println!(
        "baseline accuracy {:.1}%",
        100.0 * evaluate(&mut base, &test, 16)
    );
    println!();
    println!("fragment | accuracy | cycles saved | crossbars | est. fps (scaled chip)");

    // Batches are spread over worker threads through the shared execution
    // core; results are bitwise identical to the serial path.
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));

    for fragment in [4usize, 8, 16] {
        // Re-polarize at this fragment size.
        let mut net = base.clone();
        let constraints = vec![
            LayerConstraints {
                polarize: Some(PolarizeSpec {
                    fragment_size: fragment,
                    policy: PolarizationPolicy::WMajor,
                }),
                ..Default::default()
            };
            net.weight_layer_count()
        ];
        let config = AdmmConfig {
            epochs: 8,
            lr: 0.02,
            ..Default::default()
        };
        let mut trainer = AdmmTrainer::new(&mut net, constraints, config);
        trainer.train(&mut net, &mut train, &test, &mut rng);

        let accel_config = AcceleratorConfig {
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: fragment,
                weight_bits: 8,
                cell: CellSpec::paper_2bit(),
                input_bits: 12,
                zero_skipping: true,
            },
            activation_bits: 12,
        };
        let mut accel = Accelerator::map_network(&net, accel_config).expect("maps");
        let acc = accel.evaluate_parallel(&test, 8, workers);
        let stats = accel.stats();

        // Frame-rate estimate on a paper-scale MCU, driven by the measured
        // per-layer EICs and crossbar footprints of the real inferences.
        let perfs = accel.layer_perfs(test.len());
        let fps = FpsModel::new(
            McuConfig::forms(if fragment <= 4 { 4 } else { fragment.min(16) }),
            perfs,
        )
        .fps();

        println!(
            "{fragment:8} | {:7.1}% | {:11.1}% | {:9} | {:.0}",
            100.0 * acc,
            100.0 * stats.cycles_saved_fraction(),
            accel.total_crossbars(),
            fps
        );
    }

    // Device variation at the paper's σ = 0.1 on the fragment-8 design.
    println!();
    let mut net = base.clone();
    let constraints = vec![
        LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 8,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        net.weight_layer_count()
    ];
    let mut trainer = AdmmTrainer::new(
        &mut net,
        constraints,
        AdmmConfig {
            epochs: 8,
            lr: 0.02,
            ..Default::default()
        },
    );
    trainer.train(&mut net, &mut train, &test, &mut rng);
    let accel_config = AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 16,
            fragment_size: 8,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 12,
            zero_skipping: true,
        },
        activation_bits: 12,
    };
    let mut accel = Accelerator::map_network(&net, accel_config).expect("maps");
    let clean = accel.evaluate_parallel(&test, 8, workers);
    accel.apply_variation(&LogNormalVariation::paper(), &mut rng);
    let noisy = accel.evaluate_parallel(&test, 8, workers);
    println!(
        "device variation σ=0.1: accuracy {:.1}% → {:.1}%",
        100.0 * clean,
        100.0 * noisy
    );
}
