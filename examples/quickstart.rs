//! Quickstart: train a tiny CNN, polarize it with ADMM, map it onto
//! FORMS crossbars and run mixed-signal inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use forms::admm::{AdmmConfig, AdmmTrainer, LayerConstraints, PolarizationPolicy, PolarizeSpec};
use forms::arch::{Accelerator, AcceleratorConfig, MappingConfig};
use forms::dnn::data::SyntheticSpec;
use forms::dnn::{evaluate, train_epoch, Layer, Network, Sgd};
use forms::reram::CellSpec;
use forms::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // 1. A small synthetic classification task and a small CNN.
    let spec = SyntheticSpec {
        classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 24,
        test_per_class: 10,
        noise: 0.15,
    };
    let (mut train, test) = spec.generate(&mut rng);
    let mut net = Network::new(vec![
        Layer::conv2d(&mut rng, 1, 6, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(&mut rng, 6 * 4 * 4, 4),
    ]);

    // 2. Ordinary training.
    let mut opt = Sgd::new(0.05).momentum(0.9);
    for _ in 0..10 {
        train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
    }
    println!(
        "baseline accuracy: {:.1}%",
        100.0 * evaluate(&mut net, &test, 16)
    );

    // 3. ADMM fragment polarization (the paper's key constraint): every
    //    4-weight fragment ends up single-signed.
    let constraints = vec![
        LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        net.weight_layer_count()
    ];
    let mut trainer = AdmmTrainer::new(&mut net, constraints, AdmmConfig::default());
    let report = trainer.train(&mut net, &mut train, &test, &mut rng);
    println!(
        "polarized accuracy: {:.1}% (violations before hard projection: {})",
        100.0 * report.test_accuracy,
        report.violations_before_finalize
    );

    // 4. Map onto polarized crossbars and run the analog path.
    let config = AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 16,
            fragment_size: 4,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 12,
            zero_skipping: true,
        },
        activation_bits: 12,
    };
    let mut accel = Accelerator::map_network(&net, config).expect("polarized model maps");
    let analog_acc = accel.evaluate(&test, 8);
    let stats = accel.stats();
    println!(
        "mixed-signal accuracy: {:.1}% on {} crossbars",
        100.0 * analog_acc,
        accel.total_crossbars()
    );
    println!(
        "zero-skipping saved {:.1}% of input cycles ({} of {} fragments fully skipped)",
        100.0 * stats.cycles_saved_fraction(),
        stats.fragments_skipped,
        stats.fragments_total
    );
}
