//! Hardware design-space exploration with the calibrated cost models: the
//! fragment-size / ADC ladder, cells-per-weight trade-off and ADC sharing
//! that paper §IV-C explores.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use forms::arch::DesignSpace;
use forms::hwmodel::{AdcModel, ChipCost, McuConfig, ThroughputModel};

fn main() {
    println!("— ADC scaling (the reason FORMS wants small ADCs) —");
    let adc = AdcModel::default();
    for bits in [3u32, 4, 5, 6, 8] {
        println!(
            "  {bits}-bit @ 1.2 GHz: {:.3} mW, {:.6} mm²",
            adc.power_mw(bits, 1.2),
            adc.area_mm2(bits)
        );
    }

    println!();
    println!("— fragment-size ladder (iso-area FORMS MCUs) —");
    println!("  frag | ADC  | cycle ns | MCU mW | MCU mm²  | rel. peak GOPs");
    let isaac = ThroughputModel::baseline(McuConfig::isaac()).peak_gops();
    for fragment in [4usize, 8, 16, 32] {
        let mcu = McuConfig::forms(fragment);
        let cost = mcu.cost();
        let gops = ThroughputModel::baseline(mcu).peak_gops();
        println!(
            "  {fragment:4} | {:4} | {:8.2} | {:6.2} | {:.6} | {:.2}",
            mcu.adc_bits,
            mcu.conversion_cycle_ns(),
            cost.power_mw,
            cost.area_mm2,
            gops / isaac
        );
    }

    println!();
    println!("— bits per ReRAM cell (paper picks 2) —");
    println!("  cell bits | cells/weight (8-bit) | weights per 128-row | ADC bits needed");
    for cell_bits in [1u32, 2, 4, 8] {
        let cells = 8u32.div_ceil(cell_bits);
        let weights = 128 / cells;
        // ADC must resolve fragment_size × (2^cell_bits − 1) levels.
        let max = 8 * ((1u32 << cell_bits) - 1);
        let adc_bits = 32 - max.leading_zeros();
        println!("  {cell_bits:9} | {cells:20} | {weights:19} | {adc_bits}");
    }

    println!();
    println!("— ADC sharing (columns per ADC) —");
    println!("  ADCs/crossbar | cols per ADC | cycle ns | chip W | rel. peak GOPs");
    for adcs in [1usize, 2, 4, 8] {
        let mcu = McuConfig {
            adcs_per_crossbar: adcs,
            ..McuConfig::forms(8)
        };
        let chip = ChipCost::for_mcu(&mcu);
        let gops = ThroughputModel::baseline(mcu).peak_gops();
        println!(
            "  {adcs:13} | {:12} | {:8.2} | {:6.2} | {:.2}",
            128 / adcs,
            mcu.conversion_cycle_ns(),
            chip.total.power_mw / 1000.0,
            gops / isaac
        );
    }

    println!();
    println!("— automated DSE: Pareto frontier at workload EIC 10.7 —");
    println!("  frag | cell bits | ADCs | GOPs/mm² | GOPs/W");
    for p in DesignSpace::default().pareto_frontier() {
        println!(
            "  {:4} | {:9} | {:4} | {:8.1} | {:.1}",
            p.fragment_size, p.cell_bits, p.adcs_per_crossbar, p.gops_per_mm2, p.gops_per_watt
        );
    }

    println!(
        "  (the cost model alone favors the largest fragment/ADC corner — it does not see\n\
         the accuracy ceiling of Fig. 6 (fragments ≤ 16) or the ADC-orchestration overhead\n\
         the paper cites against more than 4 ADCs; under those constraints the frontier\n\
         collapses to the paper's neighborhood)"
    );

    println!();
    println!(
        "The paper's design point — fragment 8, 2-bit cells, 4 ADCs per crossbar — sits at\n\
         ISAAC-level chip cost while enabling the zero-skipping gains the other experiments\n\
         quantify."
    );
}
