//! Network serving quickstart: a mapped FORMS model behind the TCP
//! front-end on an ephemeral loopback port, driven by the pipelined
//! client — requests, a deliberately impossible deadline surfacing as a
//! wire status, and a telemetry snapshot fetched over the same socket.
//!
//! ```text
//! cargo run --release --example net_serve
//! ```

use std::time::Duration;

use forms::arch::{MappedLayer, MappingConfig};
use forms::dnn::{Layer, Network, WeightLayerMut};
use forms::exec::Executor;
use forms::net::{serve_net, ClientConfig, NetClient, NetConfig};
use forms::rng::StdRng;
use forms::serve::ServeConfig;
use forms::tensor::Tensor;

const ROWS: usize = 64;
const COLS: usize = 10;

fn main() {
    // A small polarized linear model — every fragment single-signed, so
    // FORMS maps it without decomposition.
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, ROWS, COLS)]);
    let matrix = Tensor::from_fn(&[ROWS, COLS], |i| 0.02 + (i % 11) as f32 * 0.03);
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&matrix);
        }
    });
    let exec = Executor::<MappedLayer>::map_network(&net, &MappingConfig::paper(8), 16)
        .expect("polarized model maps");

    let serve_config = ServeConfig {
        replicas: 2,
        queue_capacity: 32,
        max_batch: 4,
        max_delay: Duration::from_micros(500),
        default_deadline: None,
    };
    let net_config = NetConfig::default();

    // `serve_net` binds an ephemeral loopback port, runs the client
    // closure, then drains in-flight requests and tears the stack down —
    // no daemon left behind, which is why this example exits cleanly.
    let ((), telemetry) = serve_net(&exec, &[1, 8, 8], &serve_config, &net_config, |handle| {
        println!("serving on {}", handle.addr());
        let mut client =
            NetClient::connect(handle.addr(), ClientConfig::default()).expect("connect");

        // Pipeline a batch: send all requests before reading any reply.
        let inputs: Vec<Vec<f32>> = (0..8)
            .map(|k| (0..ROWS).map(|i| ((i + k) % 7) as f32 / 7.0).collect())
            .collect();
        for input in &inputs {
            client.send(input, None).expect("send");
        }
        for k in 0..inputs.len() {
            let reply = client.recv().expect("recv");
            let output = reply.outcome.expect("completed");
            println!(
                "reply {k}: {} logits, argmax {}, served in {:?}",
                output.len(),
                output
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap(),
                reply.server_latency,
            );
        }

        // An impossible deadline comes back as a typed wire status on the
        // same live connection — not a dropped socket.
        let reply = client
            .call(&inputs[0], Some(Duration::from_nanos(1)))
            .expect("transport stays up");
        println!("1 ns deadline -> {}", reply.outcome.unwrap_err());

        // The telemetry frame round-trips the server's own counters —
        // including the per-stage breakdown of the request lifecycle.
        let snapshot = client.telemetry().expect("telemetry");
        println!(
            "telemetry over the wire: {} completed, {} expired, {} shed, p99 {:.2} ms",
            snapshot.completed,
            snapshot.expired,
            snapshot.shed,
            snapshot.latency.p99_ns() / 1e6,
        );
        for (stage, name) in snapshot
            .stages
            .in_order()
            .into_iter()
            .zip(forms::serve::STAGE_NAMES)
        {
            println!(
                "  {name:>10}: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
                stage.p50_ns() / 1e6,
                stage.p95_ns() / 1e6,
                stage.p99_ns() / 1e6,
            );
        }
    })
    .expect("loopback listener binds");

    println!(
        "final snapshot after shutdown: {} completed / {} expired",
        telemetry.completed, telemetry.expired
    );
}
