#!/usr/bin/env bash
# Hermetic CI for the FORMS reproduction: build + test fully offline, then
# verify no Cargo.toml has reintroduced an external dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "== format (rustfmt --check) =="
cargo fmt --all -- --check

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== lint (clippy, warnings are errors) =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== docs (rustdoc must build warning-free) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps

echo "== MVM hot-path bench (smoke) =="
# Runs the packed-kernel and batched-matmul throughput suite on tiny
# shapes with a fixed batch sweep and re-validates the BENCH_mvm.json it
# writes through forms_bench::json; the binary exits non-zero if the file
# is malformed or a batched-hot-path performance gate fails (batched
# kernel slower than per-sample packed at the largest batch, batched
# images/s below serial, or parallel below 1.2x serial at 2+ workers).
FORMS_BENCH_FAST=1 cargo run --release --offline -p forms-bench --bin mvm -- --smoke --batch 2,4

echo "== mixed-precision quant bench (smoke) =="
# Trains the small VGG-style stack, derives a sensitivity-based mixed
# precision plan, and measures uniform vs. mixed on FORMS and ISAAC; the
# binary re-validates the BENCH_quant.json it writes — schema plus the
# payoff invariant (mixed spends strictly fewer input cycles/MVM than
# uniform on both designs) — and exits non-zero on any violation.
FORMS_BENCH_FAST=1 cargo run --release --offline -p forms-bench --bin quant -- --smoke

echo "== serving-layer bench (smoke) =="
# Replays a short open-loop Poisson trace against the multi-replica serving
# subsystem (FORMS and ISAAC behind paced engines), re-validates the
# BENCH_serve.json it writes — schema, shed/latency invariants, and the
# replica-scaling floor; the binary exits non-zero on any violation.
cargo run --release --offline -p forms-bench --bin serve -- --smoke

echo "== observability smoke gate =="
# Every sweep point embeds a full TelemetrySnapshot with per-stage
# histograms (the bench already asserts a live to_json/from_json
# round-trip before writing, and validate() re-checks the stage-sum
# telescoping). Belt and braces: fail fast if the written document
# carries no per-stage samples at all.
awk '
    /"(queue_wait|batch_form|execute|respond)": \{/ { stage = 1; next }
    stage && /"count":/ {
        v = $2; gsub(/[^0-9]/, "", v)
        if (v + 0 > 0) nonzero += 1
        stage = 0
    }
    END { exit !(nonzero >= 4) }
' BENCH_serve.json || {
    echo "BENCH_serve.json telemetry has no non-zero stage histograms" >&2
    exit 1
}
echo "ok: BENCH_serve.json carries non-zero per-stage histograms"

echo "== fault-tolerance bench (smoke) =="
# Sweeps stuck-at fault rates through the packed path for FORMS and ISAAC,
# then runs a poisoned-replica serving storm; the binary re-validates the
# BENCH_faults.json it writes — schema, the FORMS-degrades-no-faster-than-
# ISAAC comparison, and the zero-corrupted-responses / quarantine storm
# invariants — and exits non-zero on any violation.
cargo run --release --offline -p forms-bench --bin faults -- --smoke

echo "== network front-end bench (smoke) =="
# Drives the open-loop generator through real loopback TCP sockets against
# the serving layer (FORMS and ISAAC), pairing every point with an
# in-process baseline, then runs a poisoned-replica storm over one socket;
# the binary re-validates the BENCH_net.json it writes — schema, the
# mode's loopback/in-process throughput floor (0.7x full, looser in smoke
# where CI contention makes saturation throughput noisy), zero wire
# errors, and the
# zero-corrupted / Degraded-as-wire-status / quarantine storm invariants —
# and exits non-zero on any violation.
cargo run --release --offline -p forms-bench --bin net -- --smoke

echo "== dependency freeze =="
# Every [dependencies] / [dev-dependencies] / [build-dependencies] entry in
# every manifest must be an in-tree forms-* path crate. Anything else means
# the hermetic (no-network, empty-registry) build guarantee is broken.
status=0
while IFS= read -r manifest; do
    # Matches both `name = { ... }` and dotted-key `name.workspace = true`
    # entries; prints the crate name.
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) ; next }
        in_deps && /^[A-Za-z0-9_-]+(\.[A-Za-z0-9_-]+)*[[:space:]]*=/ {
            split($1, parts, "."); print parts[1]
        }
    ' "$manifest")
    for dep in $deps; do
        case "$dep" in
            forms-*) ;;
            *)
                echo "FROZEN: $manifest declares external dependency '$dep'" >&2
                status=1
                ;;
        esac
    done
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$status" -ne 0 ]; then
    echo "dependency-freeze check FAILED: the workspace must stay hermetic" >&2
    echo "(only in-tree forms-* path crates are allowed)" >&2
    exit 1
fi
echo "ok: all manifests depend only on in-tree forms-* crates"

echo "== CI green =="
