//! # forms
//!
//! Umbrella crate for the FORMS (ISCA 2021) reproduction: *Fine-grained
//! Polarized ReRAM-based In-situ Computation for Mixed-signal DNN
//! Accelerator*.
//!
//! This crate simply re-exports the workspace crates under one roof so
//! examples and downstream users can depend on a single crate:
//!
//! - [`rng`] — deterministic in-tree PRNG and sampling distributions
//! - [`tensor`] — dense tensors, fixed-point formats, conv lowering
//! - [`dnn`] — layers, backprop, optimizers, model zoo, synthetic datasets
//! - [`admm`] — ADMM-regularized pruning / polarization / quantization
//! - [`exec`] — the shared crossbar execution core (engine trait + executor)
//! - [`reram`] — behavioural ReRAM crossbar and converter simulation
//! - [`arch`] — the FORMS accelerator (mapping, zero-skipping, pipeline)
//! - [`baselines`] — ISAAC / PUMA / DaDianNao comparators
//! - [`hwmodel`] — component-level area/power/energy models
//! - [`workloads`] — activation generators, EIC statistics, request traces
//! - [`serve`] — batched multi-replica inference serving (queues,
//!   deadlines, telemetry, open-loop load generation)
//! - [`net`] — TCP front-end for the serving layer (binary wire
//!   protocol, blocking loopback/LAN server, pipelined client)
//!
//! # Example
//!
//! ```
//! use forms::tensor::Tensor;
//!
//! let t = Tensor::ones(&[2, 2]);
//! assert_eq!(t.sum(), 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use forms_admm as admm;
pub use forms_arch as arch;
pub use forms_baselines as baselines;
pub use forms_dnn as dnn;
pub use forms_exec as exec;
pub use forms_hwmodel as hwmodel;
pub use forms_net as net;
pub use forms_reram as reram;
pub use forms_rng as rng;
pub use forms_serve as serve;
pub use forms_tensor as tensor;
pub use forms_workloads as workloads;
